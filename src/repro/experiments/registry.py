"""Registry of named experiment scenarios.

Every figure/table of the paper's evaluation, plus synthetic grids that go
beyond it, is available as a named :class:`ScenarioSpec`:

==================  ======================================================
name                what it reproduces / explores
==================  ======================================================
``fig4``            measured EB sweeps of the three TPC-W mixes
``fig5``–``fig8``   the 100-EB runs behind the time-series figures
``fig9``            closed MAP network: CTMC vs simulation vs MVA vs bounds
``fig9_ci``         the fig9 network with 64 batched simulation replications
                    per grid point (tight confidence intervals vs the CTMC)
``fig10``           MVA prediction error against measurements
``fig11``           monitoring-granularity study (Z_estim = 0.5 s vs 7 s)
``fig12``           the headline MAP-model vs MVA vs measured comparison
``table1``          M/Trace/1 response times of the Figure-1 traces
``estimation``      Z_estim = 0.5 s monitoring runs behind the fitted models
``granularity_*``   the Figure-11 estimation runs (``_fine`` 0.5 s, ``_coarse`` 7 s)
``grid_burstiness`` synthetic burstiness x population x variability grid
``grid_variability``synthetic service-variability sweep (renewal case)
``smoke``           tiny analytic-only scenario (fast engine self-check)
``smoke_tv``        tiny time-varying scenario (piecewise solvers + both
                    simulator kernels on a three-segment regime switch)
==================  ======================================================

Time-varying what-if studies beyond ``smoke_tv`` ship as scenario *packs*
(JSON files under ``scenarios/``) rather than registry entries — see
:mod:`repro.experiments.packs`.

The registry stores zero-argument factories, so scenario objects are built
fresh on each request and callers can never mutate the registered defaults.
Use :func:`register_scenario` to add project-specific scenarios; see the
README for a walk-through.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.experiments.spec import (
    EstimationSpec,
    MapSpec,
    ReplicationPolicy,
    ScenarioSpec,
    SolverSpec,
    SyntheticWorkload,
    TestbedWorkload,
    TimeVaryingSegment,
    TimeVaryingWorkload,
    TraceWorkload,
)

__all__ = [
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_descriptions",
    "tpcw_sweep_scenario",
    "monitoring_scenario",
    "PAPER_SCENARIOS",
    "EB_VALUES",
]

# Shared experiment constants of the paper-style runs (kept here, once, so
# the benchmark harness, the examples and the CLI all agree on them).
EB_VALUES = (25, 50, 75, 100, 125, 150)
SWEEP_DURATION = 400.0
SWEEP_WARMUP = 40.0
SWEEP_SEED = 7
TIMESERIES_SEED = 17
MODEL_THINK_TIME = 0.5

#: Scenario names every reproduction of the paper's evaluation must provide.
PAPER_SCENARIOS = (
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table1",
)

_REGISTRY: dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(name: str, factory: Callable[[], ScenarioSpec]) -> None:
    """Register a named scenario factory (optionally replacing an entry)."""
    _REGISTRY[name] = factory


def get_scenario(name: str) -> ScenarioSpec:
    """Build the named scenario; raises ``KeyError`` with suggestions."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(list_scenarios())}"
        ) from None
    spec = factory()
    if spec.name != name:
        raise ValueError(
            f"scenario factory for {name!r} produced a spec named {spec.name!r}"
        )
    return spec


def list_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_descriptions() -> dict[str, str]:
    """Mapping name -> one-line description for every registered scenario."""
    return {name: get_scenario(name).description for name in list_scenarios()}


# ----------------------------------------------------------------------
# Parameterised factories (reused by examples and the CLI)
# ----------------------------------------------------------------------
def tpcw_sweep_scenario(
    name: str,
    mixes: tuple[str, ...],
    populations: tuple[int, ...] = EB_VALUES,
    duration: float = SWEEP_DURATION,
    warmup: float = SWEEP_WARMUP,
    seed: int = SWEEP_SEED,
    description: str = "",
    with_models: bool = False,
) -> ScenarioSpec:
    """A measured TPC-W EB sweep, optionally with fitted-model predictions."""
    solvers: list[SolverSpec] = [SolverSpec(kind="testbed")]
    estimation = None
    if with_models:
        estimation = EstimationSpec()
        solvers += [SolverSpec(kind="fitted_map"), SolverSpec(kind="fitted_mva")]
    return ScenarioSpec(
        name=name,
        description=description or f"TPC-W EB sweep over {', '.join(mixes)}",
        workload=TestbedWorkload(
            mixes=tuple(dict.fromkeys(mixes)),
            populations=tuple(dict.fromkeys(int(n) for n in populations)),
            think_time=MODEL_THINK_TIME,
            duration=duration,
            warmup=warmup,
            estimation=estimation,
        ),
        solvers=tuple(solvers),
        # Common random numbers across populations keep the curves monotone.
        replication=ReplicationPolicy(replications=1, base_seed=seed, policy="shared"),
    )


def monitoring_scenario(
    name: str,
    mixes: tuple[str, ...],
    think_time: float,
    duration: float,
    num_ebs: int = 50,
    warmup: float = 60.0,
    seed: int = 21,
    description: str = "",
) -> ScenarioSpec:
    """A Section-4.2 monitoring run: one long testbed run per mix.

    The full :class:`~repro.tpcw.testbed.TestbedResult` of each run is the
    cell artifact, so the model-building fixtures (estimation datasets,
    granularity studies) are engine scenarios like everything else and their
    monitoring series are cache-served from npz side-files on re-runs.
    """
    return ScenarioSpec(
        name=name,
        description=description
        or f"monitoring runs ({num_ebs} EBs, Z_estim = {think_time:g} s) over "
        f"{', '.join(mixes)}",
        workload=TestbedWorkload(
            mixes=tuple(dict.fromkeys(mixes)),
            populations=(num_ebs,),
            think_time=think_time,
            duration=duration,
            warmup=warmup,
        ),
        solvers=(SolverSpec(kind="testbed"),),
        replication=ReplicationPolicy(replications=1, base_seed=seed, policy="shared"),
    )


def _estimation() -> ScenarioSpec:
    return monitoring_scenario(
        "estimation",
        mixes=("browsing", "shopping", "ordering"),
        think_time=MODEL_THINK_TIME,
        duration=800.0,
        seed=21,
        description="Z_estim = 0.5 s monitoring runs that parameterise the fitted "
        "models of Figure 12",
    )


def _granularity_fine() -> ScenarioSpec:
    return monitoring_scenario(
        "granularity_fine",
        mixes=("browsing",),
        think_time=0.5,
        duration=800.0,
        seed=23,
        description="Figure 11 estimation run at fine granularity (Z_estim = 0.5 s)",
    )


def _granularity_coarse() -> ScenarioSpec:
    return monitoring_scenario(
        "granularity_coarse",
        mixes=("browsing",),
        think_time=7.0,
        duration=2500.0,
        seed=23,
        description="Figure 11 estimation run at coarse granularity (Z_estim = 7 s)",
    )


def _timeseries_scenario(name: str, figure: str) -> Callable[[], ScenarioSpec]:
    def factory() -> ScenarioSpec:
        return ScenarioSpec(
            name=name,
            description=f"100-EB monitoring runs behind Figure {figure} (the per-second "
            "series are the cells' testbed artifacts)",
            workload=TestbedWorkload(
                mixes=("browsing", "shopping", "ordering"),
                populations=(100,),
                think_time=MODEL_THINK_TIME,
                duration=300.0,
                warmup=30.0,
            ),
            solvers=(SolverSpec(kind="testbed"),),
            replication=ReplicationPolicy(replications=1, base_seed=TIMESERIES_SEED, policy="shared"),
        )

    return factory


def _fig4() -> ScenarioSpec:
    return tpcw_sweep_scenario(
        "fig4",
        mixes=("browsing", "shopping", "ordering"),
        description="Figure 4: measured throughput and utilisation vs number of EBs",
    )


def _fig9() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig9",
        description="Figure 9 network: exact CTMC vs event simulation vs MVA vs bounds "
        "on a bursty closed MAP network",
        workload=SyntheticWorkload(
            front=MapSpec(family="exponential", mean=0.02),
            db_mean=0.015,
            db_scv=(4.0,),
            db_decay=(0.95,),
            think_time=0.5,
            populations=(5, 15, 30),
        ),
        solvers=(
            SolverSpec(kind="ctmc"),
            SolverSpec(kind="simulation", options={"horizon": 3000.0, "warmup": 300.0}),
            SolverSpec(kind="mva"),
            SolverSpec(kind="bounds"),
        ),
        replication=ReplicationPolicy(replications=2, base_seed=2008, policy="per_cell"),
    )


def _fig9_ci() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig9_ci",
        description="Figure 9 network with 64 batched simulation replications per "
        "grid point: sub-percent confidence intervals cross-checked against the "
        "exact CTMC (the workload class the vectorized kernel exists for)",
        workload=SyntheticWorkload(
            front=MapSpec(family="exponential", mean=0.02),
            db_mean=0.015,
            db_scv=(4.0,),
            db_decay=(0.95,),
            think_time=0.5,
            populations=(5, 15, 30),
        ),
        solvers=(
            SolverSpec(kind="ctmc"),
            SolverSpec(
                kind="simulation",
                options={"horizon": 2000.0, "warmup": 200.0, "sim_backend": "batched"},
            ),
        ),
        replication=ReplicationPolicy(replications=64, base_seed=2008, policy="per_cell"),
    )


def _fig10() -> ScenarioSpec:
    spec = tpcw_sweep_scenario(
        "fig10",
        mixes=("browsing", "shopping", "ordering"),
        description="Figure 10: MVA predictions (mean demands only) vs measured throughput",
        with_models=True,
    )
    # Figure 10 only needs the MVA side of the fitted model.
    return replace(spec, solvers=(SolverSpec(kind="testbed"), SolverSpec(kind="fitted_mva")))


def _fig11() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig11",
        description="Figure 11: effect of the monitoring granularity (Z_estim = 0.5 s vs 7 s) "
        "on the fitted MAP model",
        workload=TestbedWorkload(
            mixes=("browsing",),
            populations=EB_VALUES,
            think_time=MODEL_THINK_TIME,
            duration=SWEEP_DURATION,
            warmup=SWEEP_WARMUP,
            estimation=EstimationSpec(seed=23),
        ),
        solvers=(
            SolverSpec(kind="testbed"),
            SolverSpec(
                kind="fitted_map",
                label="map_z0.5",
                options={"estimation_think_time": 0.5, "estimation_duration": 800.0},
            ),
            SolverSpec(
                kind="fitted_map",
                label="map_z7",
                options={"estimation_think_time": 7.0, "estimation_duration": 2500.0},
            ),
        ),
        replication=ReplicationPolicy(replications=1, base_seed=SWEEP_SEED, policy="shared"),
    )


def _fig12() -> ScenarioSpec:
    return tpcw_sweep_scenario(
        "fig12",
        mixes=("browsing", "shopping", "ordering"),
        description="Figure 12: burstiness-aware MAP model vs MVA vs measurements",
        with_models=True,
    )


def _table1() -> ScenarioSpec:
    return ScenarioSpec(
        name="table1",
        description="Table 1: M/Trace/1 response times of the four Figure-1 traces "
        "at 50% and 80% utilisation",
        workload=TraceWorkload(),
        solvers=(SolverSpec(kind="mtrace1"),),
        replication=ReplicationPolicy(replications=1, base_seed=1, policy="per_cell"),
    )


def _grid_burstiness() -> ScenarioSpec:
    return ScenarioSpec(
        name="grid_burstiness",
        description="Synthetic grid: burstiness (decay) x service variability (SCV) x "
        "population, solved exactly and bounded",
        workload=SyntheticWorkload(
            front=MapSpec(family="exponential", mean=0.02),
            db_mean=0.015,
            db_scv=(4.0, 16.0),
            db_decay=(0.0, 0.9, 0.99),
            think_time=0.5,
            populations=(1, 10, 40),
        ),
        solvers=(
            SolverSpec(kind="ctmc"),
            SolverSpec(kind="mva"),
            SolverSpec(kind="bounds"),
        ),
    )


def _grid_variability() -> ScenarioSpec:
    return ScenarioSpec(
        name="grid_variability",
        description="Synthetic sweep of service variability without autocorrelation "
        "(renewal case): where MVA degrades gracefully",
        workload=SyntheticWorkload(
            front=MapSpec(family="exponential", mean=0.02),
            db_mean=0.015,
            db_scv=(1.0, 2.0, 8.0, 32.0),
            db_decay=(0.0,),
            think_time=0.5,
            populations=(1, 5, 20, 60),
        ),
        solvers=(
            SolverSpec(kind="ctmc"),
            SolverSpec(kind="mva"),
            SolverSpec(kind="bounds"),
        ),
    )


def _smoke() -> ScenarioSpec:
    return ScenarioSpec(
        name="smoke",
        description="Tiny analytic-only scenario: engine self-check in well under a second",
        workload=SyntheticWorkload(
            front=MapSpec(family="exponential", mean=0.05),
            db_mean=0.04,
            db_scv=(4.0,),
            db_decay=(0.5,),
            think_time=0.5,
            populations=(1, 3),
        ),
        solvers=(SolverSpec(kind="ctmc"), SolverSpec(kind="mva"), SolverSpec(kind="bounds")),
    )


def _smoke_tv() -> ScenarioSpec:
    return ScenarioSpec(
        name="smoke_tv",
        description="Tiny time-varying self-check: a three-segment regime switch "
        "solved piecewise (stationary and uniformized-transient) and simulated "
        "with the batched kernel",
        workload=TimeVaryingWorkload(
            front=MapSpec(family="exponential", mean=0.05),
            db_mean=0.04,
            db_scv=4.0,
            db_decay=0.5,
            think_time=0.5,
            population=4,
            segments=(
                TimeVaryingSegment(duration=40.0, label="base"),
                TimeVaryingSegment(duration=20.0, label="surge", population=8, db_decay=0.9),
                TimeVaryingSegment(duration=40.0, label="cooldown", population=2),
            ),
        ),
        solvers=(
            SolverSpec(kind="piecewise_ctmc"),
            SolverSpec(kind="transient_ctmc"),
            SolverSpec(
                kind="simulation",
                options={"warmup": 5.0, "sim_backend": "batched"},
            ),
        ),
        replication=ReplicationPolicy(replications=4, base_seed=11, policy="per_cell"),
    )


register_scenario("fig4", _fig4)
for _name in ("fig5", "fig6", "fig7", "fig8"):
    register_scenario(_name, _timeseries_scenario(_name, _name[3:]))
register_scenario("fig9", _fig9)
register_scenario("fig9_ci", _fig9_ci)
register_scenario("fig10", _fig10)
register_scenario("fig11", _fig11)
register_scenario("fig12", _fig12)
register_scenario("table1", _table1)
register_scenario("estimation", _estimation)
register_scenario("granularity_fine", _granularity_fine)
register_scenario("granularity_coarse", _granularity_coarse)
register_scenario("grid_burstiness", _grid_burstiness)
register_scenario("grid_variability", _grid_variability)
register_scenario("smoke", _smoke)
register_scenario("smoke_tv", _smoke_tv)
