"""End-to-end model construction from coarse monitoring measurements.

This module glues the pieces of the methodology together.  Given per-window
utilisation and completion counts for the front server and the database
server (the only inputs the paper requires), it

1. estimates each server's mean service time, index of dispersion and 95th
   percentile of service times,
2. fits a MAP(2) per server,
3. assembles the closed MAP queueing network of Figure 9 and exposes
   predictions (throughput, utilisations, response time) as a function of the
   number of emulated browsers, together with the MVA baseline parameterised
   only with mean service demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dispersion import DispersionEstimate, estimate_index_of_dispersion
from repro.core.map_fitting import FittedServiceProcess, fit_map2_from_measurements
from repro.core.percentiles import estimate_service_percentile
from repro.maps.map_process import MAP
from repro.queueing.map_network import MapClosedNetworkSolver, MapNetworkResult
from repro.queueing.mva import MVAResult, mva_closed_network

__all__ = [
    "ServerMeasurement",
    "ServerModel",
    "MultiTierModel",
    "build_server_model",
    "build_multitier_model",
]


@dataclass(frozen=True)
class ServerMeasurement:
    """Coarse monitoring data of one server.

    Attributes
    ----------
    name:
        Server name (used in reports).
    utilizations:
        Per-window CPU utilisation samples in ``[0, 1]``.
    completions:
        Per-window completed-request counts.
    period:
        Monitoring window length in seconds.
    """

    name: str
    utilizations: np.ndarray
    completions: np.ndarray
    period: float

    def __post_init__(self) -> None:
        utilizations = np.asarray(self.utilizations, dtype=float).reshape(-1)
        completions = np.asarray(self.completions, dtype=float).reshape(-1)
        if utilizations.shape != completions.shape:
            raise ValueError("utilizations and completions must have the same length")
        if self.period <= 0:
            raise ValueError("period must be positive")
        object.__setattr__(self, "utilizations", utilizations)
        object.__setattr__(self, "completions", completions)

    @property
    def mean_service_time(self) -> float:
        """Busy time per completion: the utilisation-law service demand."""
        total_busy = float(self.utilizations.sum()) * self.period
        total_completed = float(self.completions.sum())
        if total_completed <= 0:
            return float("nan")
        return total_busy / total_completed

    @property
    def mean_utilization(self) -> float:
        """Average utilisation over the monitoring interval."""
        return float(self.utilizations.mean())

    @property
    def observed_throughput(self) -> float:
        """Average completion rate over the monitoring interval."""
        return float(self.completions.sum() / (self.completions.size * self.period))


@dataclass(frozen=True)
class ServerModel:
    """A fitted service-process model for one server."""

    name: str
    mean_service_time: float
    dispersion: DispersionEstimate
    p95_service_time: float
    fitted: FittedServiceProcess

    @property
    def index_of_dispersion(self) -> float:
        """The measured index of dispersion used for the fit."""
        return self.dispersion.index_of_dispersion

    @property
    def service_map(self) -> MAP:
        """The fitted MAP(2) service process."""
        return self.fitted.map

    def summary(self) -> dict:
        """Dictionary with the three measured parameters and the fit result."""
        return {
            "name": self.name,
            "mean_service_time": self.mean_service_time,
            "index_of_dispersion": self.index_of_dispersion,
            "p95_service_time": self.p95_service_time,
            "fitted_scv": self.fitted.scv,
            "fitted_decay": self.fitted.decay,
            "fitted_I": self.fitted.achieved_dispersion,
        }


def build_server_model(
    measurement: ServerMeasurement,
    dispersion_tolerance: float = 0.20,
    convergence_tolerance: float = 0.20,
) -> ServerModel:
    """Estimate (mean, I, p95) for one server and fit its MAP(2).

    Parameters
    ----------
    measurement:
        Coarse monitoring data for the server.
    dispersion_tolerance:
        ±tolerance on the index of dispersion of the candidate MAP(2)s.
    convergence_tolerance:
        Convergence tolerance of the Figure-2 index of dispersion estimator.
    """
    dispersion = estimate_index_of_dispersion(
        measurement.utilizations,
        measurement.completions,
        measurement.period,
        tol=convergence_tolerance,
    )
    mean_service = measurement.mean_service_time
    p95 = estimate_service_percentile(
        measurement.utilizations, measurement.completions, measurement.period, quantile=0.95
    )
    fitted = fit_map2_from_measurements(
        mean=mean_service,
        index_of_dispersion=max(dispersion.index_of_dispersion, 1e-6),
        p95=p95,
        dispersion_tolerance=dispersion_tolerance,
    )
    return ServerModel(
        name=measurement.name,
        mean_service_time=mean_service,
        dispersion=dispersion,
        p95_service_time=p95,
        fitted=fitted,
    )


@dataclass
class MultiTierModel:
    """The parameterised capacity-planning model of the multi-tier system.

    Combines the fitted front-server and database-server models with the
    think time of the closed-loop workload generator.  Exposes both the
    burstiness-aware MAP queueing network prediction and the MVA baseline.
    """

    front: ServerModel
    database: ServerModel
    think_time: float
    _solver: MapClosedNetworkSolver = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        self._solver = MapClosedNetworkSolver(
            self.front.service_map, self.database.service_map, self.think_time
        )

    # ------------------------------------------------------------------
    # Burstiness-aware prediction (the paper's model)
    # ------------------------------------------------------------------
    def predict(self, population: int) -> MapNetworkResult:
        """Exact prediction of the MAP queueing network for one population."""
        return self._solver.solve(population)

    def predict_throughput(self, populations) -> np.ndarray:
        """Predicted throughput for each population in ``populations``."""
        return np.array([self.predict(int(n)).throughput for n in populations])

    # ------------------------------------------------------------------
    # Baseline: MVA with mean service demands only
    # ------------------------------------------------------------------
    def mva_baseline(self, population: int) -> MVAResult:
        """The MVA model of Section 3.4 (mean service demands only)."""
        demands = [self.front.mean_service_time, self.database.mean_service_time]
        return mva_closed_network(demands, self.think_time, population)

    def mva_throughput(self, populations) -> np.ndarray:
        """MVA-predicted throughput for each population in ``populations``."""
        populations = [int(n) for n in populations]
        if not populations:
            return np.array([])
        result = self.mva_baseline(max(populations))
        return np.array([result.throughput_at(n) for n in populations])

    def summary(self) -> dict:
        """Dictionary describing both fitted servers and the think time."""
        return {
            "think_time": self.think_time,
            "front": self.front.summary(),
            "database": self.database.summary(),
        }


def build_multitier_model(
    front: ServerMeasurement,
    database: ServerMeasurement,
    think_time: float,
    dispersion_tolerance: float = 0.20,
) -> MultiTierModel:
    """Build the full two-tier model from per-server monitoring data."""
    front_model = build_server_model(front, dispersion_tolerance=dispersion_tolerance)
    database_model = build_server_model(database, dispersion_tolerance=dispersion_tolerance)
    return MultiTierModel(front=front_model, database=database_model, think_time=think_time)
