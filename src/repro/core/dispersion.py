"""Estimation of the index of dispersion from coarse monitoring data.

This module implements the pseudo-code of Figure 2 of the paper.  The input
is the output of any commodity monitoring tool: for each sampling window of
length ``T`` seconds the CPU utilisation ``U_k`` of the server and the number
``n_k`` of requests it completed.  The estimator

1. converts utilisations to busy times ``B_k = U_k * T``,
2. concatenates the busy periods (thereby masking out idle time and queueing,
   so that what remains is a property of the *service process* alone),
3. slides a window of ``t`` busy-seconds over every starting position ``k``
   and records the number of completions ``N_t^k`` inside it,
4. computes ``Y(t) = Var(N_t) / E(N_t)`` and grows ``t`` until ``Y`` converges
   (relative change below ``tol``), returning the converged value as the
   estimate of the index of dispersion ``I``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DispersionEstimate", "estimate_index_of_dispersion", "dispersion_profile"]


class InsufficientDataError(ValueError):
    """Raised when the monitoring trace is too short for a reliable estimate."""


@dataclass(frozen=True)
class DispersionEstimate:
    """Result of the Figure-2 estimation procedure.

    Attributes
    ----------
    index_of_dispersion:
        The converged value of ``Y(t)`` (the estimate of ``I``).
    converged:
        Whether the convergence criterion was met before the window grew too
        large for the trace; when ``False`` the last computed value is
        returned, mirroring the behaviour of practical implementations.
    window:
        The aggregation window (in busy-seconds) at which the procedure
        stopped.
    profile:
        The sequence of ``(t, Y(t))`` pairs explored, useful for diagnostics
        and for studying the effect of measurement granularity (Section 4.2).
    mean_busy_rate:
        Average number of completions per busy-second, i.e. the reciprocal of
        the estimated mean service time.
    """

    index_of_dispersion: float
    converged: bool
    window: float
    profile: tuple[tuple[float, float], ...] = field(repr=False)
    mean_busy_rate: float

    @property
    def mean_service_time(self) -> float:
        """Estimated mean service time (busy time per completion)."""
        if self.mean_busy_rate <= 0:
            return float("nan")
        return 1.0 / self.mean_busy_rate


def _validate_inputs(utilizations, completions, period: float) -> tuple[np.ndarray, np.ndarray]:
    utilizations = np.asarray(utilizations, dtype=float).reshape(-1)
    completions = np.asarray(completions, dtype=float).reshape(-1)
    if utilizations.shape != completions.shape:
        raise ValueError("utilizations and completions must have the same length")
    if utilizations.size < 2:
        raise InsufficientDataError("at least two monitoring windows are required")
    if period <= 0:
        raise ValueError("the sampling period must be positive")
    if np.any(utilizations < 0) or np.any(utilizations > 1.0 + 1e-9):
        raise ValueError("utilizations must lie in [0, 1]")
    if np.any(completions < 0):
        raise ValueError("completion counts must be non-negative")
    return utilizations, completions


def _window_counts(
    busy_times: np.ndarray, completions: np.ndarray, window: float
) -> np.ndarray:
    """Completion counts in busy-time windows of length ``window``.

    For every starting sample ``k`` the algorithm accumulates consecutive
    busy periods ``B_k, B_{k+1}, ...`` until their sum reaches ``window`` and
    records the total number of completions.  Implemented with cumulative
    sums and a vectorised search so that the whole profile can be computed
    quickly even for long monitoring traces.
    """
    cumulative_busy = np.concatenate([[0.0], np.cumsum(busy_times)])
    cumulative_completions = np.concatenate([[0.0], np.cumsum(completions)])
    total_busy = cumulative_busy[-1]
    starts = cumulative_busy[:-1]
    valid = starts + window <= total_busy
    if not np.any(valid):
        return np.empty(0)
    start_idx = np.nonzero(valid)[0]
    # End index: the first sample whose cumulative busy time reaches the
    # window target.  searchsorted on the cumulative busy array achieves the
    # "approximately equal to t" accumulation of the pseudo-code.
    targets = starts[valid] + window
    end_idx = np.searchsorted(cumulative_busy, targets, side="left")
    end_idx = np.clip(end_idx, start_idx + 1, len(busy_times))
    counts = cumulative_completions[end_idx] - cumulative_completions[start_idx]
    return counts


def estimate_index_of_dispersion(
    utilizations,
    completions,
    period: float,
    tol: float = 0.20,
    min_windows: int = 100,
    max_steps: int = 10_000,
) -> DispersionEstimate:
    """Estimate the index of dispersion of a service process (Figure 2).

    Parameters
    ----------
    utilizations:
        Per-window utilisation samples ``U_k`` in ``[0, 1]``.
    completions:
        Per-window completed-request counts ``n_k``.
    period:
        Sampling window length ``T`` in seconds.
    tol:
        Convergence tolerance on the relative change of ``Y(t)`` (the paper
        uses 0.20).
    min_windows:
        Minimum number of ``N_t`` observations required at each aggregation
        level; when fewer are available the procedure stops (the paper
        requires 100 and asks for new measurements otherwise).
    max_steps:
        Safety cap on the number of aggregation levels explored.

    Returns
    -------
    DispersionEstimate
        The estimate together with its convergence diagnostics.

    Raises
    ------
    InsufficientDataError
        If even the very first aggregation level has fewer than
        ``min_windows`` observations.
    """
    utilizations, completions = _validate_inputs(utilizations, completions, period)
    busy_times = utilizations * period
    total_busy = float(busy_times.sum())
    total_completions = float(completions.sum())
    if total_busy <= 0 or total_completions <= 0:
        raise InsufficientDataError("the server was never busy in the monitoring trace")
    mean_busy_rate = total_completions / total_busy

    profile: list[tuple[float, float]] = []
    window = period
    previous_y: float | None = None
    converged = False
    for _ in range(max_steps):
        counts = _window_counts(busy_times, completions, window)
        if counts.size < min_windows:
            if not profile:
                raise InsufficientDataError(
                    "monitoring trace too short: only %d windows of %g busy-seconds"
                    % (counts.size, window)
                )
            break
        mean_count = counts.mean()
        y_value = float(counts.var() / mean_count) if mean_count > 0 else 0.0
        profile.append((window, y_value))
        if previous_y is not None and previous_y > 0:
            if abs(1.0 - y_value / previous_y) <= tol:
                converged = True
                break
        previous_y = y_value
        window += period
    final_window, final_y = profile[-1]
    return DispersionEstimate(
        index_of_dispersion=final_y,
        converged=converged,
        window=final_window,
        profile=tuple(profile),
        mean_busy_rate=mean_busy_rate,
    )


def dispersion_profile(
    utilizations, completions, period: float, windows
) -> np.ndarray:
    """Return ``Y(t)`` for explicitly requested aggregation windows.

    This is a diagnostic companion to :func:`estimate_index_of_dispersion`:
    it evaluates the variance-to-mean ratio of completion counts for each
    busy-time window in ``windows`` without any convergence logic.
    """
    utilizations, completions = _validate_inputs(utilizations, completions, period)
    busy_times = utilizations * period
    values = []
    for window in np.asarray(windows, dtype=float):
        counts = _window_counts(busy_times, completions, float(window))
        if counts.size < 2:
            values.append(np.nan)
            continue
        mean_count = counts.mean()
        values.append(float(counts.var() / mean_count) if mean_count > 0 else 0.0)
    return np.asarray(values)
