"""Estimation of service-time percentiles from busy-period measurements.

The paper (Section 4.1) estimates the 95th percentile of the service times —
one of the three parameters of the fitted MAP(2) — without ever observing
individual service times.  The idea: within a monitoring window of a bursty
server, the ``n_k`` jobs completed during the busy time ``B_k`` receive
similar service, so ``B_k ≈ n_k * S_k``.  Approximating ``n_k`` with its
median, the 95th percentile of ``S_k`` is the 95th percentile of ``B_k``
divided by the median of ``n_k``.  For low-dispersion workloads the estimate
is biased, but there the queueing behaviour is dominated by the mean and the
SCV, so the bias is harmless (the paper makes the same argument).
"""

from __future__ import annotations

import numpy as np

__all__ = ["estimate_service_percentile", "estimate_p95_service_time"]


def estimate_service_percentile(
    utilizations,
    completions,
    period: float,
    quantile: float = 0.95,
    busy_threshold: float = 0.0,
) -> float:
    """Estimate a service-time quantile from coarse monitoring data.

    Parameters
    ----------
    utilizations:
        Per-window utilisation samples ``U_k`` in ``[0, 1]``.
    completions:
        Per-window completed-request counts ``n_k``.
    period:
        Sampling window length ``T`` in seconds.
    quantile:
        The quantile to estimate (default 0.95).
    busy_threshold:
        Windows whose utilisation is not above this threshold are ignored
        (idle windows carry no information about the service process).

    Returns
    -------
    float
        The estimated quantile of the per-request service time.
    """
    utilizations = np.asarray(utilizations, dtype=float).reshape(-1)
    completions = np.asarray(completions, dtype=float).reshape(-1)
    if utilizations.shape != completions.shape:
        raise ValueError("utilizations and completions must have the same length")
    if period <= 0:
        raise ValueError("the sampling period must be positive")
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    active = (utilizations > busy_threshold) & (completions > 0)
    if active.sum() < 2:
        raise ValueError("not enough busy monitoring windows to estimate a percentile")
    busy_times = utilizations[active] * period
    counts = completions[active]
    busy_quantile = float(np.quantile(busy_times, quantile))
    median_count = float(np.median(counts))
    if median_count <= 0:
        raise ValueError("median completion count is zero")
    return busy_quantile / median_count


def estimate_p95_service_time(
    utilizations, completions, period: float, busy_threshold: float = 0.0
) -> float:
    """Shorthand for the 95th percentile used throughout the paper."""
    return estimate_service_percentile(
        utilizations, completions, period, quantile=0.95, busy_threshold=busy_threshold
    )
