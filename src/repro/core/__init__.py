"""The paper's primary contribution: burstiness-aware model parameterisation.

The workflow implemented here turns *coarse* monitoring measurements of a
multi-tier system into a capacity-planning model that captures burstiness:

1. :mod:`~repro.core.dispersion` — estimate the index of dispersion ``I`` of
   each server's service process from per-window utilisation and
   completion-count samples (the pseudo-code of Figure 2 of the paper);
2. :mod:`~repro.core.percentiles` — estimate the 95th percentile of service
   times from busy-period lengths;
3. :mod:`~repro.core.map_fitting` — fit a MAP(2) from the triple
   *(mean service time, I, 95th percentile)*;
4. :mod:`~repro.core.model_builder` — assemble the per-server MAP(2)s into a
   closed MAP queueing network (Figure 9) and predict throughput / response
   time / utilisation as a function of the number of emulated browsers.
"""

from repro.core.dispersion import (
    DispersionEstimate,
    estimate_index_of_dispersion,
    dispersion_profile,
)
from repro.core.percentiles import estimate_p95_service_time, estimate_service_percentile
from repro.core.map_fitting import (
    FittedServiceProcess,
    MapFitError,
    fit_map2_from_measurements,
)
from repro.core.model_builder import (
    ServerMeasurement,
    ServerModel,
    MultiTierModel,
    build_server_model,
    build_multitier_model,
)

__all__ = [
    "DispersionEstimate",
    "estimate_index_of_dispersion",
    "dispersion_profile",
    "estimate_p95_service_time",
    "estimate_service_percentile",
    "FittedServiceProcess",
    "MapFitError",
    "fit_map2_from_measurements",
    "ServerMeasurement",
    "ServerModel",
    "MultiTierModel",
    "build_server_model",
    "build_multitier_model",
]
