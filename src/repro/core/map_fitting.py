"""Fitting a MAP(2) from (mean, index of dispersion, 95th percentile).

Section 4.1 of the paper parameterises the service process of each server
with a two-phase Markovian Arrival Process fitted from exactly three numbers
that can all be obtained from coarse measurements:

* the mean service time,
* the index of dispersion ``I`` (from the Figure-2 estimator),
* the 95th percentile of the service times (from busy-period scaling).

The procedure generates a set of candidate MAP(2)s whose index of dispersion
is within ±20 % of the measured value and selects the candidate whose 95th
percentile is closest to the measured one; ties are broken in favour of the
largest lag-1 autocorrelation (the paper's recommendation, as it yields
slightly conservative capacity estimates).

The candidate family used here is the *correlated hyper-exponential* MAP(2)
(:func:`repro.maps.map2.map2_from_moments_and_decay`): its marginal is a
two-phase hyper-exponential (so the mean is matched exactly and the 95th
percentile is controlled by the SCV and the branch-probability parameters)
while the stickiness of the phase chain controls the index of dispersion
independently of the marginal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.maps.map2 import map2_exponential, map2_from_moments_and_decay
from repro.maps.map_process import MAP

__all__ = [
    "FittedServiceProcess",
    "MapFitError",
    "fit_map2_from_measurements",
    "candidate_grid",
]


class MapFitError(RuntimeError):
    """No feasible MAP(2) candidate could be constructed for a target triple.

    Subclasses :class:`RuntimeError` for backward compatibility (callers that
    caught the historical bare ``RuntimeError`` keep working) but carries the
    fitting targets and nearest-feasible diagnostics so supervised callers —
    e.g. the live service's degradation path — can log *why* a refit failed
    instead of a bare one-liner.

    Attributes
    ----------
    target_mean, target_dispersion, target_p95:
        The measured ``(mean, I, p95)`` triple the fit was asked to match
        (``target_p95`` may be ``None``).
    candidates_considered:
        How many grid candidates were attempted before giving up.
    nearest:
        Diagnostics of the constructible candidate whose index of dispersion
        came closest to the target — ``{"achieved_dispersion", "scv",
        "decay", "relative_error"}`` — or ``None`` when not a single grid
        candidate was constructible.
    """

    def __init__(
        self,
        message: str,
        *,
        target_mean: float,
        target_dispersion: float,
        target_p95: float | None = None,
        candidates_considered: int = 0,
        nearest: dict | None = None,
    ) -> None:
        details = (
            f"{message} (targets: mean={target_mean:g}, "
            f"I={target_dispersion:g}, p95="
            f"{'none' if target_p95 is None else format(target_p95, 'g')}; "
            f"{candidates_considered} candidate(s) considered"
        )
        if nearest is not None:
            details += (
                f"; nearest feasible: I={nearest.get('achieved_dispersion'):g} "
                f"at scv={nearest.get('scv'):g}, decay={nearest.get('decay'):g}, "
                f"relative error {nearest.get('relative_error'):.1%}"
            )
        details += ")"
        super().__init__(details)
        self.target_mean = target_mean
        self.target_dispersion = target_dispersion
        self.target_p95 = target_p95
        self.candidates_considered = candidates_considered
        self.nearest = dict(nearest) if nearest is not None else None


@dataclass(frozen=True)
class FittedServiceProcess:
    """A fitted MAP(2) service process together with fitting diagnostics."""

    map: MAP
    mean: float
    target_dispersion: float
    achieved_dispersion: float
    target_p95: float | None
    achieved_p95: float
    scv: float
    decay: float
    branch_probability: float | None
    candidates_considered: int
    candidates_feasible: int

    @property
    def dispersion_error(self) -> float:
        """Relative error on the index of dispersion."""
        if self.target_dispersion == 0:
            return 0.0
        return abs(self.achieved_dispersion - self.target_dispersion) / self.target_dispersion

    @property
    def p95_error(self) -> float | None:
        """Relative error on the 95th percentile (``None`` if no target)."""
        if self.target_p95 is None or self.target_p95 == 0:
            return None
        return abs(self.achieved_p95 - self.target_p95) / self.target_p95

    def summary(self) -> dict:
        """Dictionary summarising the fit, convenient for reports."""
        return {
            "mean": self.mean,
            "target_I": self.target_dispersion,
            "achieved_I": self.achieved_dispersion,
            "target_p95": self.target_p95,
            "achieved_p95": self.achieved_p95,
            "scv": self.scv,
            "decay": self.decay,
            "candidates": self.candidates_feasible,
        }


def candidate_grid(
    target_dispersion: float,
    scv_values=None,
    decay_values=None,
    branch_probabilities=(None, 0.7, 0.9, 0.975),
) -> list[tuple[float, float, float | None]]:
    """Enumerate the (SCV, decay, branch-probability) candidate grid.

    The SCV grid spans from just above 1 to slightly above the target index
    of dispersion (an SCV larger than ``I`` is unreachable with positive
    correlation, and the paper's workloads all satisfy ``SCV <= I``).
    """
    if target_dispersion <= 0:
        raise ValueError("target_dispersion must be positive")
    if scv_values is None:
        upper = max(2.0, min(1.2 * target_dispersion, 400.0))
        scv_values = np.unique(
            np.concatenate(
                [
                    np.array([1.05, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0]),
                    np.geomspace(1.05, upper, 12),
                ]
            )
        )
        scv_values = scv_values[scv_values <= upper]
    if decay_values is None:
        decay_values = np.array(
            [0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.975, 0.99, 0.995, 0.998, 0.999, 0.9995]
        )
    grid: list[tuple[float, float, float | None]] = []
    for scv in scv_values:
        for decay in decay_values:
            for p1 in branch_probabilities:
                grid.append((float(scv), float(decay), p1))
    return grid


def fit_map2_from_measurements(
    mean: float,
    index_of_dispersion: float,
    p95: float | None = None,
    dispersion_tolerance: float = 0.20,
    scv_values=None,
    decay_values=None,
    branch_probabilities=(None, 0.7, 0.9, 0.975),
) -> FittedServiceProcess:
    """Fit a MAP(2) to the measured (mean, I, p95) triple.

    Parameters
    ----------
    mean:
        Measured mean service time (must be positive).
    index_of_dispersion:
        Measured index of dispersion ``I``.
    p95:
        Measured 95th percentile of the service times; ``None`` selects the
        candidate with the smallest dispersion error instead.
    dispersion_tolerance:
        Maximum relative error on ``I`` for a candidate to be retained
        (the paper uses ±20 %).
    scv_values, decay_values, branch_probabilities:
        Optional overrides of the candidate grid (see :func:`candidate_grid`).

    Returns
    -------
    FittedServiceProcess

    Notes
    -----
    * When ``I <= 1`` (no burstiness, low variability) the exponential MAP is
      returned directly: burstiness plays no role and the mean dominates the
      queueing behaviour.
    * The fit never alters the mean: every candidate matches it exactly.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if index_of_dispersion <= 0:
        raise ValueError("index_of_dispersion must be positive")
    if index_of_dispersion <= 1.0 + 1e-9:
        exponential = map2_exponential(mean)
        return FittedServiceProcess(
            map=exponential,
            mean=mean,
            target_dispersion=index_of_dispersion,
            achieved_dispersion=1.0,
            target_p95=p95,
            achieved_p95=exponential.interarrival_percentile(0.95),
            scv=1.0,
            decay=0.0,
            branch_probability=None,
            candidates_considered=1,
            candidates_feasible=1,
        )

    grid = candidate_grid(index_of_dispersion, scv_values, decay_values, branch_probabilities)
    feasible: list[tuple[float, float, float, float, float | None, MAP]] = []
    considered = 0
    for scv, decay, p1 in grid:
        considered += 1
        try:
            candidate = map2_from_moments_and_decay(mean, scv, decay, p1)
        except ValueError:
            continue
        achieved_i = candidate.index_of_dispersion()
        if achieved_i <= 0:
            continue
        relative_error = abs(achieved_i - index_of_dispersion) / index_of_dispersion
        if relative_error > dispersion_tolerance:
            continue
        feasible.append((achieved_i, scv, decay, relative_error, p1, candidate))

    if not feasible:
        # Fall back to the candidate with the closest achievable dispersion:
        # better an approximate model than none (this only happens for very
        # small tolerance values or extreme targets).
        best = None
        best_error = np.inf
        for scv, decay, p1 in grid:
            try:
                candidate = map2_from_moments_and_decay(mean, scv, decay, p1)
            except ValueError:
                continue
            achieved_i = candidate.index_of_dispersion()
            relative_error = abs(achieved_i - index_of_dispersion) / index_of_dispersion
            if relative_error < best_error:
                best_error = relative_error
                best = (achieved_i, scv, decay, relative_error, p1, candidate)
        if best is None:
            raise MapFitError(
                "no feasible MAP(2) candidate could be constructed",
                target_mean=mean,
                target_dispersion=index_of_dispersion,
                target_p95=p95,
                candidates_considered=considered,
                nearest=None,
            )
        feasible = [best]

    def selection_key(entry):
        achieved_i, scv, decay, relative_error, p1, candidate = entry
        if p95 is None:
            p95_error = relative_error
        else:
            p95_error = abs(candidate.interarrival_percentile(0.95) - p95) / p95
        # Ties broken by the largest lag-1 autocorrelation (conservative fit).
        return (p95_error, -candidate.autocorrelation(1))

    best_entry = min(feasible, key=selection_key)
    achieved_i, scv, decay, _, p1, chosen = best_entry
    return FittedServiceProcess(
        map=chosen,
        mean=mean,
        target_dispersion=index_of_dispersion,
        achieved_dispersion=achieved_i,
        target_p95=p95,
        achieved_p95=chosen.interarrival_percentile(0.95),
        scv=scv,
        decay=decay,
        branch_probability=p1,
        candidates_considered=considered,
        candidates_feasible=len(feasible),
    )
