"""Vectorized batched-replication simulator of the closed MAP network.

One numpy kernel advances **all R replications of a cell in lockstep**: the
per-replication network state is four small integers — ``(n_front, n_db,
front_phase, db_phase)`` — so the whole batch lives in a handful of length-R
arrays and every simulation step is a fixed sequence of array operations
instead of per-event Python dispatch.  The kernel simulates exactly the same
continuous-time Markov chain as the scalar event loop in
:mod:`repro.simulation.closed_network` (think → front → database → think,
service MAPs frozen while their server is idle), so its estimates agree with
the scalar kernel and the exact CTMC solution within statistical error
(asserted by the cross-validation suite).

Why the jump chain, not uniformization
--------------------------------------
The issue that motivated this kernel suggested uniformizing with a global
rate ``Λ = N/Z + max exit rates``.  For the bursty MAPs this repository is
about, that is exactly the wrong regime: a fitted MAP(2) spends most of its
time in a slow phase whose exit rate is an order of magnitude below the fast
phase's, so a global-``Λ`` clock spends 70–85 % of its steps on self-loops.
The kernel therefore advances the *embedded jump chain* directly (a
vectorized Gillespie/SSA step): per step it computes each replication's total
exit rate ``r = n_think/Z + busy_front·exit(front_phase) +
busy_db·exit(db_phase)``, draws the holding time as ``Exp(1)/r``, picks the
event category from one uniform, and resolves the MAP jump destination from a
second uniform.  Statistically this is the same process — every step is a
real transition, and the per-state holding times are exact.

Seed policy
-----------
Results are **per-replication deterministic and batch-composition
independent**: replication ``i`` owns ``numpy.random.default_rng(seeds[i])``
and consumes only its own stream, so its result depends on ``seeds[i]``
alone — not on ``R``, not on which other replications share the batch.  This
is what lets the experiment runner resume a partially-cached replication set
bit-identically: the missing replications are re-batched in any combination
and still produce the original values.

Per replication, the stream is consumed as:

1. one uniform for the initial front phase, then one for the initial
   database phase (inverse CDF of each MAP's embedded stationary
   distribution),
2. then blocks of ``BATCH_RNG_CHUNK`` draws per refill: that many unit
   exponentials (holding times), then that many uniforms (event category),
   then that many uniforms (jump destination).  Each simulation step consumes
   exactly one variate from each of the three buffers, whatever the event
   outcome.

``BATCH_RNG_CHUNK`` is therefore part of the seed policy (like ``RNG_CHUNK``
of the scalar kernel): changing it changes seeded trajectories.
``BATCH_WINDOW`` (the statistics-reduction window) does not affect the
trajectory, but it partitions the time-weighted sums and so pins their
last-ulp rounding; together with the batch-width-independent pairwise fold
(:func:`_fold_columns`) it is what makes a replication's result bit-equal
whether it runs alone or inside any batch.

The batched and scalar kernels consume their generators differently, so the
same seed gives *different* (equally valid) trajectories on the two
backends; fixed ``(seed, backend)`` is bit-identical across runs and
platforms (pinned by a regression test).

Performance
-----------
Per step the kernel pays a fixed number of numpy calls on length-R arrays,
so the aggregate event rate grows almost linearly with ``R`` until memory
bandwidth binds: the batch crosses over with the scalar kernel around R≈16
and reaches an order of magnitude more events/second in the hundreds of
replications (measured in ``BENCH_solver.json`` → ``sim_loop``).  That is
the regime this kernel exists for — confidence intervals from hundreds or
thousands of replications per grid point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.maps.map_process import MAP
from repro.simulation.closed_network import ClosedNetworkSimResult

__all__ = [
    "simulate_closed_map_network_batch",
    "BATCH_RNG_CHUNK",
    "SIM_BACKENDS",
]

#: Recognised simulation backends of the experiment engine: the scalar event
#: loop (``event``) and this kernel (``batched``).
SIM_BACKENDS = ("event", "batched")

#: Draws per stream per refill of a replication's RNG buffers.  Part of the
#: batched seed policy (see module docstring).
BATCH_RNG_CHUNK = 4096

#: Steps per statistics-reduction window.  Small enough that the ``(window,
#: R)`` buffers stay cache-resident at any R, and **fixed** — the window
#: partitions the time-weighted sums, so (like ``BATCH_RNG_CHUNK``) changing
#: it perturbs the last-ulp rounding of seeded results.  Must divide
#: ``BATCH_RNG_CHUNK`` and be a power of two.
BATCH_WINDOW = 64


def _fold_columns(block: np.ndarray) -> np.ndarray:
    """Deterministic pairwise tree-sum along axis 0 of a 2-D block.

    Every fold level is an elementwise add across the full batch width, so
    the floating-point rounding of each column's sum is *identical for any
    R* — which is what makes a replication's statistics independent of the
    batch it ran in.  (numpy's own axis sums switch between pairwise and
    sequential accumulation depending on memory layout, and a single-column
    array takes the contiguous code path — the sums would differ between a
    batch of one and a batch of many.)  Requires a power-of-two row count.
    """
    while block.shape[0] > 1:
        block = block[0::2] + block[1::2]
    return block[0]


def _jump_probabilities(map_process: MAP) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exit rates + per-phase hidden/marked jump probabilities of one MAP."""
    rates = -np.diag(map_process.D0)
    hidden = np.maximum(map_process.D0, 0.0)
    np.fill_diagonal(hidden, 0.0)
    marked = np.maximum(map_process.D1, 0.0)
    return rates, hidden / rates[:, None], marked / rates[:, None]


def _destination_table(front: MAP, db: MAP) -> np.ndarray:
    """Globally-encoded jump CDF table (general MAP orders).

    Global phases: front ``0..K1-1``, database ``K1..K1+K2-1`` (``KG`` in
    total).  Row ``g`` is laid out over ``2*KG`` outcome columns so that for
    a destination uniform ``v``, ``jump = count(row <= v)`` directly encodes
    the outcome:

    * ``jump < KG``: hidden transition to global phase ``jump``,
    * ``jump >= KG``: marked transition (a completion) to global phase
      ``jump - KG``.

    Leading columns repeat the previous cumulative value (zero probability
    mass) so database rows land in the database index range, and the last
    real outcome column is set to ``2.0`` — always selectable, which clamps
    cumulative rounding exactly like the scalar kernel's ``bisect`` clamp.
    """
    K1, K2 = front.order, db.order
    KG = K1 + K2
    table = np.full((KG, 2 * KG), 2.0)
    for map_process, offset, order in ((front, 0, K1), (db, K1, K2)):
        _, hidden_p, marked_p = _jump_probabilities(map_process)
        for phase in range(order):
            hidden_cum = np.cumsum(hidden_p[phase])
            marked_cum = hidden_cum[-1] + np.cumsum(marked_p[phase])
            row = np.full(2 * KG, 2.0)
            row[:offset] = 0.0
            row[offset:offset + order] = hidden_cum
            row[offset + order:KG] = hidden_cum[-1]
            row[KG:KG + offset] = hidden_cum[-1]
            row[KG + offset:KG + offset + order] = marked_cum
            row[KG + offset + order - 1] = 2.0
            table[offset + phase] = row
    return table


def _destination_scalars(front: MAP, db: MAP):
    """Branch-free per-phase jump scalars for MAPs of order <= 2.

    For order 2 a hidden jump has exactly one possible destination (the
    other phase; ``D0``'s diagonal is excluded) and a marked jump picks
    between two, so the whole destination draw reduces to two threshold
    comparisons — no per-row table gather.  Produces outcomes identical to
    :func:`_destination_table` (asserted by a regression test).

    Returns ``(hidden_prob, marked_threshold, marked_base, hidden_dest)``,
    each indexed by global phase.
    """
    K1, K2 = front.order, db.order
    KG = K1 + K2
    hidden_prob = np.zeros(KG)
    marked_threshold = np.full(KG, 2.0)
    marked_base = np.zeros(KG, dtype=np.intp)
    hidden_dest = np.zeros(KG, dtype=np.intp)
    for map_process, offset, order in ((front, 0, K1), (db, K1, K2)):
        if order > 2:
            raise ValueError("scalar destination tables require MAP order <= 2")
        _, hidden_p, marked_p = _jump_probabilities(map_process)
        for phase in range(order):
            g = offset + phase
            hidden_prob[g] = hidden_p[phase].sum()
            marked_base[g] = offset
            hidden_dest[g] = offset + (1 - phase) if order == 2 else offset
            if order == 2:
                # v in [hidden, threshold) -> first marked destination,
                # v >= threshold -> second; 2.0 == "never" (single dest).
                marked_threshold[g] = hidden_prob[g] + marked_p[phase][0]
    return hidden_prob, marked_threshold, marked_base, hidden_dest


def _initial_phase(cumulative: np.ndarray, u: float) -> int:
    phase = int(np.searchsorted(cumulative, u, side="right"))
    return min(phase, len(cumulative) - 1)


def simulate_closed_map_network_batch(
    front_service: MAP,
    db_service: MAP,
    think_time: float,
    population: int,
    horizon: float,
    warmup: float = 0.0,
    seeds: Sequence[int] = (),
    destination_path: str = "auto",
) -> list[ClosedNetworkSimResult]:
    """Simulate ``len(seeds)`` replications of the closed network at once.

    Parameters mirror :func:`~repro.simulation.closed_network.
    simulate_closed_map_network`; instead of one ``rng`` the caller passes
    one integer seed per replication (see the module docstring for the seed
    policy).  Returns one :class:`ClosedNetworkSimResult` per seed, in seed
    order.

    ``destination_path`` selects how MAP jump destinations are resolved:
    ``"auto"`` uses the branch-free scalar path when both MAPs have order
    <= 2 and the general CDF table otherwise; ``"table"`` / ``"scalars"``
    force a path (the two are outcome-identical where both apply — forcing
    exists for tests and benchmarks).
    """
    if think_time <= 0:
        raise ValueError("think_time must be positive for the simulator")
    if population < 1:
        raise ValueError("population must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if horizon <= warmup:
        raise ValueError("horizon must exceed warmup")
    if not seeds:
        raise ValueError("seeds must contain at least one replication seed")
    if destination_path not in ("auto", "table", "scalars"):
        raise ValueError(f"unknown destination_path {destination_path!r}")

    num_replications = len(seeds)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    K1, K2 = front_service.order, db_service.order
    KG = K1 + K2
    small_orders = K1 <= 2 and K2 <= 2
    if destination_path == "scalars" and not small_orders:
        raise ValueError("destination_path='scalars' requires MAP orders <= 2")
    use_scalars = small_orders if destination_path == "auto" else destination_path == "scalars"

    exit_rate = np.concatenate([-np.diag(front_service.D0), -np.diag(db_service.D0)])
    if use_scalars:
        hid_prob, mark_thresh, mark_base, hid_dest = _destination_scalars(
            front_service, db_service
        )
        table = table_width = None
    else:
        table = _destination_table(front_service, db_service)
        table_width = table.shape[1]
    inv_think = 1.0 / think_time

    R = num_replications
    # -- initial state: everyone thinking, phases ~ embedded stationary ----
    front_cum = np.cumsum(front_service.embedded_stationary)
    db_cum = np.cumsum(db_service.embedded_stationary)
    fp = np.empty(R, dtype=np.intp)
    dp = np.empty(R, dtype=np.intp)
    for r, rng in enumerate(rngs):
        fp[r] = _initial_phase(front_cum, rng.random())
        dp[r] = K1 + _initial_phase(db_cum, rng.random())

    nf = np.zeros(R, dtype=np.int64)
    ndb = np.zeros(R, dtype=np.int64)
    clock = np.zeros(R)
    busy_front = np.zeros(R)
    busy_db = np.zeros(R)
    area_front = np.zeros(R)
    area_db = np.zeros(R)
    measured = np.zeros(R)
    completed = np.zeros(R, dtype=np.int64)
    events = np.zeros(R, dtype=np.int64)

    # -- RNG stores: (BATCH_RNG_CHUNK, R) consumed row-per-step; the +1
    # column pad breaks the power-of-two stride that would otherwise alias
    # every refill column onto the same cache sets ----------------------
    chunk = BATCH_RNG_CHUNK
    store_shape = (chunk, R + 1)
    exp_store = np.empty(store_shape)
    event_store = np.empty(store_shape)
    dest_store = np.empty(store_shape)
    refill_block = min(16, R)
    refill_scratch = np.empty((refill_block, chunk))

    def _refill() -> None:
        # Per replication and per refill: `chunk` exponentials, then `chunk`
        # event uniforms, then `chunk` destination uniforms (the seed
        # policy).  Replications are drawn in blocks through a contiguous
        # scratch so the transposed store write stays cache-friendly.
        for store, draw in (
            (exp_store, lambda rng, out: rng.standard_exponential(chunk, out=out)),
            (event_store, lambda rng, out: rng.random(out=out)),
            (dest_store, lambda rng, out: rng.random(out=out)),
        ):
            for r0 in range(0, R, refill_block):
                block = min(refill_block, R - r0)
                for i in range(block):
                    draw(rngs[r0 + i], refill_scratch[i])
                store[:, r0:r0 + block] = refill_scratch[:block].T

    # -- per-window statistics buffers ----------------------------------
    S = BATCH_WINDOW
    nf_buf = np.empty((S, R), dtype=np.int32)
    ndb_buf = np.empty((S, R), dtype=np.int32)
    clock_buf = np.empty((S, R))
    md_buf = np.empty((S, R), dtype=bool)
    before = np.empty((S, R))
    seg = np.empty((S, R))
    seg_start = np.empty((S, R))

    # -- length-R scratch (the hot loop allocates nothing) -----------------
    occupancy = np.empty(R, dtype=np.int64)
    think_rate = np.empty(R)
    front_rate = np.empty(R)
    db_rate = np.empty(R)
    through_front = np.empty(R)
    total_rate = np.empty(R)
    dt = np.empty(R)
    u = np.empty(R)
    past_think = np.empty(R, dtype=bool)
    past_front = np.empty(R, dtype=bool)
    front_busy = np.empty(R, dtype=bool)
    db_busy = np.empty(R, dtype=bool)
    front_event = np.empty(R, dtype=bool)
    think_event = np.empty(R, dtype=bool)
    marked = np.empty(R, dtype=bool)
    marked_front = np.empty(R, dtype=bool)
    marked_db = np.empty(R, dtype=bool)
    act = np.empty(R, dtype=np.intp)
    dest = np.empty(R, dtype=np.intp)
    dest_alt = np.empty(R, dtype=np.intp)
    scratch_f = np.empty(R)
    scratch_f2 = np.empty(R)
    start_clock = np.empty(R)
    if not use_scalars:
        rows = np.empty((R, table_width))
        rows_le = np.empty((R, table_width), dtype=bool)
        jump = np.empty(R, dtype=np.intp)
        jump_sub = np.empty(R, dtype=np.intp)

    position = chunk  # forces a refill on the first window
    population_f = float(population)
    while True:
        if position >= chunk:
            _refill()
            position = 0
        np.copyto(start_clock, clock)
        for s in range(S):
            column = position + s
            nf_buf[s] = nf
            ndb_buf[s] = ndb
            # total exit rate of every replication's current state
            np.add(nf, ndb, out=occupancy)
            np.subtract(population_f, occupancy, out=think_rate)
            think_rate *= inv_think
            np.take(exit_rate, fp, out=front_rate)
            np.greater(nf, 0, out=front_busy)
            front_rate *= front_busy
            np.take(exit_rate, dp, out=db_rate)
            np.greater(ndb, 0, out=db_busy)
            db_rate *= db_busy
            np.add(think_rate, front_rate, out=through_front)
            np.add(through_front, db_rate, out=total_rate)
            # holding time + clock
            np.divide(exp_store[column, :R], total_rate, out=dt)
            clock += dt
            clock_buf[s] = clock
            # event category: [0, think) -> think completion,
            # [think, think+front) -> front MAP jump, rest -> db MAP jump
            np.multiply(event_store[column, :R], total_rate, out=u)
            np.greater_equal(u, think_rate, out=past_think)
            np.greater_equal(u, through_front, out=past_front)
            np.copyto(act, fp)
            np.copyto(act, dp, where=past_front)
            # jump destination of the active server's MAP
            v = dest_store[column, :R]
            if use_scalars:
                np.take(hid_prob, act, out=scratch_f)
                np.less(v, scratch_f, out=marked)  # temporarily "hidden"
                np.take(mark_thresh, act, out=scratch_f2)
                np.greater_equal(v, scratch_f2, out=marked_front)  # 2nd dest
                np.take(mark_base, act, out=dest)
                dest += marked_front
                np.take(hid_dest, act, out=dest_alt)
                np.copyto(dest, dest_alt, where=marked)
                np.logical_not(marked, out=marked)
            else:
                np.take(table, act, axis=0, out=rows)
                np.less_equal(rows, v[:, None], out=rows_le)
                np.sum(rows_le, axis=1, out=jump)
                np.greater_equal(jump, KG, out=marked)
                np.multiply(marked, KG, out=jump_sub)
                np.subtract(jump, jump_sub, out=dest)
            # state updates
            np.not_equal(past_think, past_front, out=front_event)
            np.copyto(fp, dest, where=front_event)
            np.copyto(dp, dest, where=past_front)
            np.logical_and(front_event, marked, out=marked_front)
            np.logical_and(past_front, marked, out=marked_db)
            md_buf[s] = marked_db
            np.logical_not(past_think, out=think_event)
            nf += think_event
            nf -= marked_front
            ndb += marked_front
            ndb -= marked_db
        position += S
        # -- window reductions: time-weighted statistics over [0, horizon],
        # warmup excluded, exactly as the scalar kernel accumulates them.
        # Float sums go through the batch-width-independent pairwise fold;
        # the integer counts (events, completions) are exact in any order.
        before[0] = start_clock
        before[1:] = clock_buf[:-1]
        np.minimum(clock_buf, horizon, out=seg)
        np.maximum(before, warmup, out=seg_start)
        seg -= seg_start
        np.clip(seg, 0.0, None, out=seg)
        measured += _fold_columns(seg)
        busy_front += _fold_columns(seg * (nf_buf > 0))
        busy_db += _fold_columns(seg * (ndb_buf > 0))
        area_front += _fold_columns(seg * nf_buf)
        area_db += _fold_columns(seg * ndb_buf)
        events += (before < horizon).sum(axis=0)
        completed += (md_buf & (clock_buf >= warmup) & (clock_buf < horizon)).sum(axis=0)
        if clock.min() >= horizon:
            break

    return [
        ClosedNetworkSimResult(
            population=population,
            think_time=think_time,
            horizon=horizon,
            throughput=float(completed[r] / measured[r]),
            front_utilization=float(busy_front[r] / measured[r]),
            db_utilization=float(busy_db[r] / measured[r]),
            front_queue_length=float(area_front[r] / measured[r]),
            db_queue_length=float(area_db[r] / measured[r]),
            completed=int(completed[r]),
            warmup=warmup,
            measured_time=float(measured[r]),
            events=int(events[r]),
        )
        for r in range(R)
    ]
