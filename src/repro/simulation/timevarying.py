"""Simulation of the closed MAP network under a time-varying timeline.

The static kernels (:mod:`repro.simulation.closed_network` scalar event loop,
:mod:`repro.simulation.batched` lockstep batch) simulate one fixed network.
This module simulates a *timeline* of :class:`~repro.queueing.transient.
NetworkSegment` entries — diurnal load curves, flash-crowd population ramps,
regime-switching service MAPs, server slowdown and recovery — with the same
trajectory semantics as the transient solver layer
(:mod:`repro.queueing.transient`):

* service-MAP regime switches carry the current phase over (all segments
  must use MAPs of equal orders),
* population increases add customers to the think station,
* population decreases drop the excess from the front queue first, then the
  database queue,
* hard outages (``front_up`` / ``db_up`` false) freeze the down station: its
  service rate is zero, its phase does not move, and jobs queue at it until
  a later segment brings the station back.

A segment in which *every* job is queued at a down station (and the other
station is empty) is a deadlock — no jump can fire.  Both kernels detect the
zero-total-rate state and advance the clock deterministically to the segment
boundary (or the horizon): the scalar kernel consumes no draws for the jump
it never samples, while the batched kernel keeps its lockstep per-column
consumption (the deadlocked replication's draws are discarded exactly like a
clamped step's).  No-outage timelines never hit either path, so their
trajectories are bit-identical to what this module produced before outages
existed.

Segment boundaries
------------------
Both kernels advance the embedded jump chain (the vectorized SSA of the
batched kernel).  When a sampled holding time would carry a replication past
its current segment's end, the step is *clamped*: the clock moves exactly to
the boundary and **no state transition fires**.  This is statistically exact
— the holding time to the next jump is exponential in the current state, so
the process restarted at the boundary with the new segment's rates is the
correct continuation (memorylessness); the clamped draw is simply discarded.

Seed policy
-----------
A clamped step still consumes exactly the same draws as a regular step (one
exponential, one event uniform, one destination uniform), so the per-step
stream layout of the static kernels is preserved: the batched kernel remains
**per-replication deterministic and batch-composition independent** — a
replication's trajectory depends on its own seed and the timeline alone, so
cached replication sets resume bit-identically under any re-batching.  Per
replication the batched stream is consumed exactly as in
:mod:`repro.simulation.batched` (two initial-phase uniforms, then
``BATCH_RNG_CHUNK``-sized blocks of exponentials / event uniforms /
destination uniforms).  The scalar kernel draws per step from the chunked
streams of :class:`~repro.simulation.closed_network._ChunkedDraws` (two
initial-phase uniforms, then per step one exponential and two uniforms);
like the static pair, the two backends consume their generators differently
and give different (equally valid) trajectories for the same seed.

Statistics are collected **per segment** (time-weighted over each segment's
overlap with the post-warmup measurement window) and aggregated over the
whole timeline, so simulated segment estimates are directly comparable with
the per-segment metrics of the piecewise solvers.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.queueing.transient import NetworkSegment
from repro.simulation.batched import (
    BATCH_RNG_CHUNK,
    BATCH_WINDOW,
    _destination_table,
    _fold_columns,
    _initial_phase,
)
from repro.simulation.closed_network import _ChunkedDraws

__all__ = [
    "SegmentSimStats",
    "TimeVaryingSimResult",
    "simulate_timevarying_closed_map_network",
    "simulate_timevarying_closed_map_network_batch",
]


@dataclass(frozen=True)
class SegmentSimStats:
    """Time-weighted estimates over one segment's measured interval.

    ``measured_time`` is the overlap of the segment with the post-warmup
    measurement window; a segment entirely inside the warmup has zero
    measured time and reports zero rates.
    """

    label: str
    start: float
    end: float
    population: int
    throughput: float
    front_utilization: float
    db_utilization: float
    front_queue_length: float
    db_queue_length: float
    completed: int
    measured_time: float


@dataclass(frozen=True)
class TimeVaryingSimResult:
    """Estimates of one replication over a whole time-varying timeline."""

    horizon: float
    warmup: float
    throughput: float
    front_utilization: float
    db_utilization: float
    front_queue_length: float
    db_queue_length: float
    completed: int
    measured_time: float
    events: int
    segments: tuple[SegmentSimStats, ...]

    def summary(self) -> dict:
        """Headline metrics (same keys as the static kernels and solvers)."""
        return {
            "throughput": self.throughput,
            "front_utilization": self.front_utilization,
            "db_utilization": self.db_utilization,
            "front_queue_length": self.front_queue_length,
            "db_queue_length": self.db_queue_length,
        }


def _validate_timeline(segments: Sequence[NetworkSegment], warmup: float) -> float:
    if not segments:
        raise ValueError("at least one segment is required")
    first = segments[0]
    for segment in segments[1:]:
        if (
            segment.front.order != first.front.order
            or segment.db.order != first.db.order
        ):
            raise ValueError(
                "all segments must use service MAPs of equal orders so phases "
                "carry over at regime switches"
            )
    horizon = float(sum(segment.duration for segment in segments))
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if horizon <= warmup:
        raise ValueError("timeline horizon must exceed warmup")
    return horizon


def _segment_stats(
    segments: Sequence[NetworkSegment],
    boundaries: np.ndarray,
    completed: np.ndarray,
    busy_front: np.ndarray,
    busy_db: np.ndarray,
    area_front: np.ndarray,
    area_db: np.ndarray,
    measured: np.ndarray,
) -> tuple[SegmentSimStats, ...]:
    stats = []
    start = 0.0
    for s, segment in enumerate(segments):
        m = float(measured[s])
        scale = 1.0 / m if m > 0 else 0.0
        stats.append(
            SegmentSimStats(
                label=segment.label,
                start=start,
                end=float(boundaries[s]),
                population=segment.population,
                throughput=float(completed[s]) * scale,
                front_utilization=float(busy_front[s]) * scale,
                db_utilization=float(busy_db[s]) * scale,
                front_queue_length=float(area_front[s]) * scale,
                db_queue_length=float(area_db[s]) * scale,
                completed=int(completed[s]),
                measured_time=m,
            )
        )
        start = float(boundaries[s])
    return tuple(stats)


def _overall_result(
    horizon: float,
    warmup: float,
    events: int,
    segment_stats: tuple[SegmentSimStats, ...],
) -> TimeVaryingSimResult:
    measured = sum(s.measured_time for s in segment_stats)
    completed = sum(s.completed for s in segment_stats)
    scale = 1.0 / measured if measured > 0 else 0.0
    return TimeVaryingSimResult(
        horizon=horizon,
        warmup=warmup,
        throughput=completed * scale,
        front_utilization=sum(s.front_utilization * s.measured_time for s in segment_stats) * scale,
        db_utilization=sum(s.db_utilization * s.measured_time for s in segment_stats) * scale,
        front_queue_length=sum(s.front_queue_length * s.measured_time for s in segment_stats) * scale,
        db_queue_length=sum(s.db_queue_length * s.measured_time for s in segment_stats) * scale,
        completed=completed,
        measured_time=measured,
        events=events,
        segments=segment_stats,
    )


def simulate_timevarying_closed_map_network(
    segments: Sequence[NetworkSegment],
    warmup: float = 0.0,
    rng: np.random.Generator | None = None,
) -> TimeVaryingSimResult:
    """Scalar jump-chain simulation of one replication over a timeline."""
    segments = list(segments)
    horizon = _validate_timeline(segments, warmup)
    if rng is None:
        rng = np.random.default_rng()
    draws = _ChunkedDraws(rng)
    num_segments = len(segments)
    boundaries = np.cumsum([segment.duration for segment in segments])

    # Per-segment parameter tables (plain lists for the scalar hot loop).
    K1 = segments[0].front.order
    K2 = segments[0].db.order
    params = []
    for segment in segments:
        # A down station's exit rates are zero: it never wins the event race,
        # so its (healthy-MAP) jump CDF is never consulted and its phase
        # stays frozen through the outage.
        front_exit = (
            (-np.diag(segment.front.D0)).tolist() if segment.front_up else [0.0] * K1
        )
        db_exit = (
            (-np.diag(segment.db.D0)).tolist() if segment.db_up else [0.0] * K2
        )
        front_cdf = _scalar_jump_cdf(segment.front)
        db_cdf = _scalar_jump_cdf(segment.db)
        params.append(
            (
                segment.population,
                1.0 / segment.think_time,
                front_exit,
                db_exit,
                front_cdf,
                db_cdf,
            )
        )

    # Initial state: everyone thinking, phases ~ the first segment's MAPs'
    # embedded stationary distributions (front drawn first, then database —
    # the shared initial-draw order of all kernels).
    front_cum = np.cumsum(segments[0].front.embedded_stationary)
    db_cum = np.cumsum(segments[0].db.embedded_stationary)
    fp = _initial_phase(front_cum, draws.uniform())
    dp = _initial_phase(db_cum, draws.uniform())

    nf = 0
    ndb = 0
    clock = 0.0
    s = 0
    events = 0
    completed = np.zeros(num_segments, dtype=np.int64)
    busy_front = np.zeros(num_segments)
    busy_db = np.zeros(num_segments)
    area_front = np.zeros(num_segments)
    area_db = np.zeros(num_segments)
    measured = np.zeros(num_segments)

    def _measure(start: float, end: float) -> None:
        span = min(end, horizon) - max(start, warmup)
        if span <= 0:
            return
        measured[s] += span
        if nf > 0:
            busy_front[s] += span
            area_front[s] += span * nf
        if ndb > 0:
            busy_db[s] += span
            area_db[s] += span * ndb

    while clock < horizon:
        population, inv_think, front_exit, db_exit, front_cdf, db_cdf = params[s]
        think_rate = (population - nf - ndb) * inv_think
        front_rate = front_exit[fp] if nf > 0 else 0.0
        db_rate = db_exit[dp] if ndb > 0 else 0.0
        total_rate = think_rate + front_rate + db_rate
        if total_rate <= 0.0:
            # Deadlock: every job is queued at a down station and the other
            # station is empty.  No jump can fire, so the clock advances
            # deterministically to the segment boundary, consuming no draws
            # (there is no holding time to sample).
            segment_end = float(boundaries[s])
            _measure(clock, segment_end)
            clock = segment_end
            if s == num_segments - 1:
                break
            s += 1
            excess = nf + ndb - params[s][0]
            if excess > 0:
                drop_front = min(nf, excess)
                nf -= drop_front
                ndb -= excess - drop_front
            continue
        # A clamped step consumes exactly the draws of a regular step.
        dt = draws.exponential() / total_rate
        u = draws.uniform()
        v = draws.uniform()
        new_clock = clock + dt
        segment_end = float(boundaries[s])
        if new_clock >= segment_end and s < num_segments - 1:
            # Clamp to the boundary: no transition fires (see module
            # docstring); the next segment's parameters take over and a
            # population decrease truncates front first, then database.
            _measure(clock, segment_end)
            clock = segment_end
            s += 1
            excess = nf + ndb - params[s][0]
            if excess > 0:
                drop_front = min(nf, excess)
                nf -= drop_front
                ndb -= excess - drop_front
            continue
        _measure(clock, new_clock)
        clock = new_clock
        if clock >= horizon:
            break
        events += 1
        x = u * total_rate
        if x < think_rate:
            nf += 1
        elif x < think_rate + front_rate:
            jump = min(bisect_right(front_cdf[fp], v), 2 * K1 - 1)
            if jump >= K1:
                fp = jump - K1
                nf -= 1
                ndb += 1
            else:
                fp = jump
        else:
            jump = min(bisect_right(db_cdf[dp], v), 2 * K2 - 1)
            if jump >= K2:
                dp = jump - K2
                ndb -= 1
                if warmup <= clock < horizon:
                    completed[s] += 1
            else:
                dp = jump

    stats = _segment_stats(
        segments, boundaries, completed, busy_front, busy_db, area_front, area_db, measured
    )
    return _overall_result(horizon, warmup, events, stats)


def _scalar_jump_cdf(map_process) -> list[list[float]]:
    """Per-phase cumulative jump distribution over the 2K outcomes."""
    rates = -np.diag(map_process.D0)
    hidden = np.maximum(map_process.D0, 0.0)
    np.fill_diagonal(hidden, 0.0)
    marked = np.maximum(map_process.D1, 0.0)
    return np.cumsum(np.hstack([hidden, marked]) / rates[:, None], axis=1).tolist()


def simulate_timevarying_closed_map_network_batch(
    segments: Sequence[NetworkSegment],
    warmup: float = 0.0,
    seeds: Sequence[int] = (),
) -> list[TimeVaryingSimResult]:
    """Lockstep batched simulation of ``len(seeds)`` timeline replications.

    The vectorized SSA of :func:`~repro.simulation.batched.
    simulate_closed_map_network_batch` extended with per-replication segment
    tracking: every step gathers each replication's current segment's
    parameters (population, think rate, exit rates, destination-CDF table
    rows) from stacked per-segment tables, and boundary crossings clamp the
    replication individually.  Statistics fold per segment through the same
    batch-width-independent pairwise tree-sum, so results are
    batch-composition independent and resume bit-identically.
    """
    segments = list(segments)
    horizon = _validate_timeline(segments, warmup)
    if not seeds:
        raise ValueError("seeds must contain at least one replication seed")

    num_segments = len(segments)
    K1 = segments[0].front.order
    K2 = segments[0].db.order
    KG = K1 + K2
    boundaries = np.cumsum([segment.duration for segment in segments])
    pop_table = np.array([float(segment.population) for segment in segments])
    pop_int = np.array([segment.population for segment in segments], dtype=np.int64)
    inv_think_table = np.array([1.0 / segment.think_time for segment in segments])
    # Down stations get all-zero exit rates: they can never win the event
    # race, so the (healthy-MAP) destination rows below stay untouched and
    # phases freeze through the outage.
    exit_flat = np.concatenate(
        [
            np.concatenate(
                [
                    -np.diag(s.front.D0) if s.front_up else np.zeros(K1),
                    -np.diag(s.db.D0) if s.db_up else np.zeros(K2),
                ]
            )
            for s in segments
        ]
    )
    # Stacked destination tables: row `seg * KG + global_phase`.
    dest_table = np.vstack([_destination_table(s.front, s.db) for s in segments])
    table_width = dest_table.shape[1]

    R = len(seeds)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    front_cum = np.cumsum(segments[0].front.embedded_stationary)
    db_cum = np.cumsum(segments[0].db.embedded_stationary)
    fp = np.empty(R, dtype=np.intp)
    dp = np.empty(R, dtype=np.intp)
    for r, rng in enumerate(rngs):
        fp[r] = _initial_phase(front_cum, rng.random())
        dp[r] = K1 + _initial_phase(db_cum, rng.random())

    nf = np.zeros(R, dtype=np.int64)
    ndb = np.zeros(R, dtype=np.int64)
    clock = np.zeros(R)
    seg_idx = np.zeros(R, dtype=np.intp)
    events = np.zeros(R, dtype=np.int64)
    completed = np.zeros((num_segments, R), dtype=np.int64)
    busy_front = np.zeros((num_segments, R))
    busy_db = np.zeros((num_segments, R))
    area_front = np.zeros((num_segments, R))
    area_db = np.zeros((num_segments, R))
    measured = np.zeros((num_segments, R))

    chunk = BATCH_RNG_CHUNK
    store_shape = (chunk, R + 1)
    exp_store = np.empty(store_shape)
    event_store = np.empty(store_shape)
    dest_store = np.empty(store_shape)
    refill_block = min(16, R)
    refill_scratch = np.empty((refill_block, chunk))

    def _refill() -> None:
        # Identical stream layout to the static batched kernel (the seed
        # policy): per refill, `chunk` exponentials, then `chunk` event
        # uniforms, then `chunk` destination uniforms per replication.
        for store, draw in (
            (exp_store, lambda rng, out: rng.standard_exponential(chunk, out=out)),
            (event_store, lambda rng, out: rng.random(out=out)),
            (dest_store, lambda rng, out: rng.random(out=out)),
        ):
            for r0 in range(0, R, refill_block):
                block = min(refill_block, R - r0)
                for i in range(block):
                    draw(rngs[r0 + i], refill_scratch[i])
                store[:, r0:r0 + block] = refill_scratch[:block].T

    S = BATCH_WINDOW
    nf_buf = np.empty((S, R), dtype=np.int32)
    ndb_buf = np.empty((S, R), dtype=np.int32)
    clock_buf = np.empty((S, R))
    md_buf = np.empty((S, R), dtype=bool)
    seg_buf = np.empty((S, R), dtype=np.intp)
    clamp_buf = np.empty((S, R), dtype=bool)
    before = np.empty((S, R))
    span = np.empty((S, R))
    span_start = np.empty((S, R))
    start_clock = np.empty(R)

    position = chunk  # forces a refill on the first window
    last_segment = num_segments - 1
    while True:
        if position >= chunk:
            _refill()
            position = 0
        np.copyto(start_clock, clock)
        for s in range(S):
            column = position + s
            nf_buf[s] = nf
            ndb_buf[s] = ndb
            seg_buf[s] = seg_idx
            # Per-replication segment parameters.
            population = np.take(pop_table, seg_idx)
            inv_think = np.take(inv_think_table, seg_idx)
            think_rate = (population - nf - ndb) * inv_think
            base = seg_idx * KG
            front_rate = np.take(exit_flat, base + fp) * (nf > 0)
            db_rate = np.take(exit_flat, base + dp) * (ndb > 0)
            through_front = think_rate + front_rate
            total_rate = through_front + db_rate
            # A deadlocked replication (every job queued at a down station)
            # has total_rate == 0: dt = inf clamps it to its segment
            # boundary, or — on the last segment — carries it past the
            # horizon with no further transitions.  Its draws are consumed
            # like a clamped step's (the lockstep seed policy).
            alive = total_rate > 0.0
            with np.errstate(divide="ignore", invalid="ignore"):
                dt = exp_store[column, :R] / total_rate
            np.copyto(dt, np.inf, where=~alive)
            new_clock = clock + dt
            segment_end = np.take(boundaries, seg_idx)
            clamp = (new_clock >= segment_end) & (seg_idx < last_segment)
            clock = np.where(clamp, segment_end, new_clock)
            clock_buf[s] = clock
            # Event resolution (clamped and deadlocked replications fire no
            # transition but consumed their draws all the same).
            u = event_store[column, :R] * total_rate
            past_think = u >= think_rate
            past_front = u >= through_front
            act = np.where(past_front, dp, fp)
            rows = np.take(dest_table, base + act, axis=0)
            jump = np.sum(rows <= dest_store[column, :R, None], axis=1)
            marked = jump >= KG
            dest = jump - marked * KG
            apply = ~clamp & alive
            clamp_buf[s] = ~apply
            front_event = (past_think != past_front) & apply
            db_event = past_front & apply
            think_event = ~past_think & apply
            np.copyto(fp, dest, where=front_event)
            np.copyto(dp, dest, where=db_event)
            marked_front = front_event & marked
            marked_db = db_event & marked
            md_buf[s] = marked_db
            nf += think_event
            nf -= marked_front
            ndb += marked_front
            ndb -= marked_db
            if clamp.any():
                # Enter the next segment; a population decrease drops the
                # excess from the front queue first, then the database
                # (unclamped replications already satisfy their segment's
                # population constraint, so the global clip is a no-op
                # for them).
                seg_idx = seg_idx + clamp
                excess = np.clip(nf + ndb - np.take(pop_int, seg_idx), 0, None)
                drop_front = np.minimum(nf, excess)
                nf -= drop_front
                ndb -= excess - drop_front
        position += S
        # Window reductions: per-segment time-weighted statistics; every
        # measured interval lies inside its step-start segment because
        # boundary crossings are clamped.
        before[0] = start_clock
        before[1:] = clock_buf[:-1]
        np.minimum(clock_buf, horizon, out=span)
        np.maximum(before, warmup, out=span_start)
        span -= span_start
        np.clip(span, 0.0, None, out=span)
        in_window = (clock_buf >= warmup) & (clock_buf < horizon)
        for g in range(num_segments):
            mask = seg_buf == g
            masked_span = span * mask
            measured[g] += _fold_columns(masked_span)
            busy_front[g] += _fold_columns(masked_span * (nf_buf > 0))
            busy_db[g] += _fold_columns(masked_span * (ndb_buf > 0))
            area_front[g] += _fold_columns(masked_span * nf_buf)
            area_db[g] += _fold_columns(masked_span * ndb_buf)
            completed[g] += (md_buf & mask & in_window).sum(axis=0)
        events += ((before < horizon) & ~clamp_buf).sum(axis=0)
        if clock.min() >= horizon:
            break

    results = []
    for r in range(R):
        stats = _segment_stats(
            segments,
            boundaries,
            completed[:, r],
            busy_front[:, r],
            busy_db[:, r],
            area_front[:, r],
            area_db[:, r],
            measured[:, r],
        )
        results.append(_overall_result(horizon, warmup, int(events[r]), stats))
    return results
