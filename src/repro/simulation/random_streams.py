"""Seeded random-stream management for reproducible simulations.

Each logical source of randomness in a simulation (think times, per-type
service demands, contention process, ...) gets its own independent
:class:`numpy.random.Generator` spawned from a single seed, so that changing
how one source is consumed never perturbs the others — an essential property
for controlled experiments and variance-reduction across configurations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent random generators derived from one seed."""

    def __init__(self, seed: int | None = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The generator for a given name is deterministic in the root seed and
        the name, independent of creation order.
        """
        if name not in self._streams:
            # Derive a child seed deterministically from the name so that the
            # stream does not depend on the order in which streams are asked for.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=tuple(int(b) for b in digest),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)
