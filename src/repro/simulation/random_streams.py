"""Seeded random-stream management for reproducible simulations.

Each logical source of randomness in a simulation (think times, per-type
service demands, contention process, ...) gets its own independent
:class:`numpy.random.Generator` spawned from a single seed, so that changing
how one source is consumed never perturbs the others — an essential property
for controlled experiments and variance-reduction across configurations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams", "derive_seed", "named_seed_sequence"]


def named_seed_sequence(seed: int, name: str) -> np.random.SeedSequence:
    """Deterministic child seed sequence for a named stream.

    The child depends only on the root ``seed`` and the ``name`` (the name's
    bytes form the spawn key), never on creation order — the property that
    makes per-cell seeding in experiment grids reproducible and independent.
    ``seed`` must be a concrete integer: ``None`` would draw fresh OS entropy
    on every call, silently breaking the determinism promised here.
    """
    if seed is None:
        raise ValueError("named_seed_sequence requires an integer seed, not None")
    digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
    return np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(b) for b in digest))


def derive_seed(seed: int, name: str) -> int:
    """Deterministic integer seed for the named stream (e.g. a grid cell)."""
    return int(named_seed_sequence(seed, name).generate_state(1, dtype=np.uint64)[0])


class RandomStreams:
    """A family of independent random generators derived from one seed."""

    def __init__(self, seed: int | None = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The generator for a given name is deterministic in the root seed and
        the name, independent of creation order.
        """
        if name not in self._streams:
            child = named_seed_sequence(self._seed_sequence.entropy, name)
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)
