"""A minimal discrete-event queue with lazy invalidation.

Simulators frequently need to *reschedule* a pending event (e.g. the next
completion of a processor-sharing server changes whenever a job arrives or
departs).  Deleting arbitrary entries from a binary heap is awkward, so the
queue uses the standard lazy-invalidation idiom: every scheduled event gets a
monotonically increasing sequence number, and cancellations simply mark the
sequence number as stale; stale entries are skipped when popped.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event queue.

    Events are arbitrary payloads scheduled at absolute times.  ``schedule``
    returns a handle that can later be passed to ``cancel``.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def schedule(self, time: float, payload: Any) -> int:
        """Schedule ``payload`` at ``time`` and return a cancellation handle."""
        handle = next(self._counter)
        heapq.heappush(self._heap, (time, handle, payload))
        self._size += 1
        return handle

    def cancel(self, handle: int) -> None:
        """Cancel a previously scheduled event (no-op if already popped)."""
        self._cancelled.add(handle)

    def pop(self) -> tuple[float, Any]:
        """Pop and return the earliest non-cancelled event as ``(time, payload)``."""
        while self._heap:
            time, handle, payload = heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._size -= 1
            return time, payload
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` when empty."""
        while self._heap:
            time, handle, _ = self._heap[0]
            if handle in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(handle)
                continue
            return time
        return None
