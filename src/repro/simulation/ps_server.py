"""An exact processor-sharing (PS) server.

The server uses the classical *virtual time* construction: a virtual clock
advances at rate ``1 / n(t)`` while ``n(t) > 0`` jobs are present, and a job
with service requirement ``S`` arriving at virtual time ``V_a`` completes when
the virtual clock reaches ``V_a + S``.  This gives exact egalitarian
processor sharing with O(log n) work per event.

The server also keeps the accounting needed by the monitoring subsystem:
cumulative busy time, number of completions, and the time-integral of the
queue length.
"""

from __future__ import annotations

import heapq
from typing import Any

__all__ = ["ProcessorSharingServer"]


class ProcessorSharingServer:
    """Egalitarian processor-sharing server with exact virtual-time dynamics."""

    def __init__(self, name: str = "server") -> None:
        self.name = name
        self._virtual_time = 0.0
        self._last_update = 0.0
        self._targets: dict[Any, float] = {}
        self._heap: list[tuple[float, Any]] = []
        # Accounting
        self.busy_time = 0.0
        self.completions = 0
        self.queue_length_integral = 0.0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._targets)

    @property
    def is_busy(self) -> bool:
        """Whether at least one job is present."""
        return bool(self._targets)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Advance the server state (virtual time and accounting) to ``now``."""
        elapsed = now - self._last_update
        if elapsed < -1e-9:
            raise ValueError("time must not run backwards (%.6f < %.6f)" % (now, self._last_update))
        if elapsed > 0:
            n = len(self._targets)
            if n > 0:
                self._virtual_time += elapsed / n
                self.busy_time += elapsed
                self.queue_length_integral += elapsed * n
            self._last_update = now

    def arrive(self, job_id: Any, demand: float, now: float) -> None:
        """Admit a job with the given service requirement at time ``now``."""
        if demand <= 0:
            raise ValueError("demand must be positive")
        if job_id in self._targets:
            raise ValueError("job %r is already in service" % (job_id,))
        self.advance(now)
        target = self._virtual_time + demand
        self._targets[job_id] = target
        heapq.heappush(self._heap, (target, job_id))

    def next_completion_time(self, now: float) -> float | None:
        """Absolute time of the next completion if no further arrivals occur."""
        self.advance(now)
        target = self._peek_valid_target()
        if target is None:
            return None
        n = len(self._targets)
        return self._last_update + (target - self._virtual_time) * n

    def complete_next(self, now: float) -> Any:
        """Complete the job with the smallest virtual finish time at ``now``."""
        self.advance(now)
        while self._heap:
            target, job_id = heapq.heappop(self._heap)
            current = self._targets.get(job_id)
            if current is None or abs(current - target) > 1e-12:
                continue  # stale heap entry
            del self._targets[job_id]
            self.completions += 1
            return job_id
        raise RuntimeError("complete_next called on an idle server")

    def _peek_valid_target(self) -> float | None:
        while self._heap:
            target, job_id = self._heap[0]
            current = self._targets.get(job_id)
            if current is None or abs(current - target) > 1e-12:
                heapq.heappop(self._heap)
                continue
            return target
        return None
