"""Trace-driven simulation of a single-server FCFS queue (the M/Trace/1 queue).

Table 1 of the paper evaluates the response-time impact of burstiness by
feeding the four service-time traces of Figure 1 to a single FCFS server with
Poisson arrivals at 50 % and 80 % utilisation.  Because consecutive service
times are *not* independent, the Pollaczek–Khinchin formula does not apply
and the queue must be simulated; the Lindley recursion makes this exact and
fast:

    W_1 = 0,    W_{i+1} = max(0, W_i + S_i - A_{i+1})

where ``W_i`` is the waiting time of the i-th job, ``S_i`` its service time
(read from the trace in order) and ``A_{i+1}`` the inter-arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TraceQueueResult", "simulate_mtrace1", "simulate_gtrace1"]


@dataclass(frozen=True)
class TraceQueueResult:
    """Per-job response times of a trace-driven FCFS single-server queue."""

    response_times: np.ndarray
    waiting_times: np.ndarray
    utilization: float

    @property
    def mean_response_time(self) -> float:
        """Mean response time (waiting plus service)."""
        return float(self.response_times.mean())

    def response_time_percentile(self, q: float) -> float:
        """Empirical ``q``-quantile of the response time."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        return float(np.quantile(self.response_times, q))

    @property
    def mean_waiting_time(self) -> float:
        """Mean waiting time in queue."""
        return float(self.waiting_times.mean())

    def summary(self) -> dict:
        """The columns reported in Table 1 of the paper."""
        return {
            "mean_response_time": self.mean_response_time,
            "p95_response_time": self.response_time_percentile(0.95),
            "utilization": self.utilization,
        }


def simulate_gtrace1(service_times, interarrival_times) -> TraceQueueResult:
    """Simulate a single-server FCFS queue from explicit arrival and service traces.

    Both traces are consumed in order; the number of simulated jobs is the
    shorter of the two lengths.
    """
    service = np.asarray(service_times, dtype=float).reshape(-1)
    interarrival = np.asarray(interarrival_times, dtype=float).reshape(-1)
    count = min(service.size, interarrival.size)
    if count < 1:
        raise ValueError("both traces must contain at least one sample")
    if np.any(service[:count] < 0) or np.any(interarrival[:count] < 0):
        raise ValueError("times must be non-negative")
    service = service[:count]
    interarrival = interarrival[:count]

    waiting = np.empty(count)
    waiting[0] = 0.0
    current = 0.0
    for i in range(1, count):
        current = max(0.0, current + service[i - 1] - interarrival[i])
        waiting[i] = current
    response = waiting + service
    total_time = float(interarrival.sum() + waiting[-1] + service[-1])
    utilization = float(service.sum() / total_time) if total_time > 0 else 0.0
    return TraceQueueResult(
        response_times=response, waiting_times=waiting, utilization=utilization
    )


def simulate_mtrace1(
    service_times,
    utilization: float,
    rng: np.random.Generator | None = None,
) -> TraceQueueResult:
    """Simulate the M/Trace/1 queue of Table 1.

    Arrivals are Poisson with rate ``utilization / mean(service_times)`` so
    that the long-run server utilisation equals ``utilization``; service
    times are consumed from the trace in their given order, preserving its
    burstiness.
    """
    service = np.asarray(service_times, dtype=float).reshape(-1)
    if service.size < 2:
        raise ValueError("the service trace must contain at least two samples")
    if not 0.0 < utilization < 1.0:
        raise ValueError("utilization must be in the open interval (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    mean_service = float(service.mean())
    arrival_rate = utilization / mean_service
    interarrival = rng.exponential(1.0 / arrival_rate, service.size)
    return simulate_gtrace1(service, interarrival)
