"""Simulation of the closed MAP queueing network of Figure 9.

This simulator reproduces, event by event, the stochastic process whose
stationary distribution the analytical solver
(:class:`repro.queueing.map_network.MapClosedNetworkSolver`) computes:

* ``N`` customers cycle think → front server → database server → think,
* think times are exponential with mean ``Z`` (infinite-server delay),
* each server completes work according to its service MAP: while the server
  is busy the MAP generates completion events (the phase is frozen while the
  server is idle), and each completion releases one queued customer.

Its purpose is validation: for any pair of service MAPs the simulated
throughput and utilisations must agree with the exact CTMC solution within
statistical error, which is one of the strongest integration tests in the
repository.

Seed policy
-----------
All randomness is drawn from the single ``rng`` passed in, but *in batches*:
unit-rate exponential and uniform variates are pre-drawn in chunks of
``RNG_CHUNK`` and consumed from buffers (:class:`_ChunkedDraws`), so the
event loop pays one numpy call per few thousand events instead of one per
MAP jump.  *Every* draw goes through the buffers — including the two initial
service phases, which are sampled by inverse CDF from one buffered uniform
each (one for the front server, then one for the database).  Consequences:

* a fixed ``(seed, RNG_CHUNK)`` pair gives bit-identical results across runs
  and platforms (pinned by a regression test),
* trajectories differ from pre-batching versions of this module (the order
  in which the underlying bit stream is consumed changed), and changing
  ``RNG_CHUNK`` is likewise a trajectory-breaking change.  Routing the
  initial-phase draws through the buffers (they previously bypassed the
  chunked streams via ``rng.choice``) was one more deliberate trajectory
  break, re-pinned in the regression test,
* statistical properties are untouched — every variate is still an
  independent draw from the same generator.

The vectorized batched-replication kernel
(:mod:`repro.simulation.batched`) simulates the same process under its own
seed policy; the two backends give different (equally valid) trajectories
for the same seed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.maps.map_process import MAP

__all__ = ["ClosedNetworkSimResult", "simulate_closed_map_network", "RNG_CHUNK"]

#: Number of variates drawn per numpy call.  Part of the seed policy: the
#: trajectory of a seeded run depends on this value (see module docstring).
RNG_CHUNK = 4096


@dataclass(frozen=True)
class ClosedNetworkSimResult:
    """Estimates from one simulation run of the closed MAP network."""

    population: int
    think_time: float
    horizon: float
    throughput: float
    front_utilization: float
    db_utilization: float
    front_queue_length: float
    db_queue_length: float
    completed: int
    warmup: float = 0.0
    measured_time: float = 0.0
    #: Jump-chain transitions over the whole run (think completions plus MAP
    #: jumps, hidden and marked, of busy servers) — the denominator-free
    #: work measure the ``sim_loop`` benchmark reports as events/second.
    #: The scalar kernel counts MAP jumps by stream consumption, so the last
    #: partially-consumed completion interval adds a few jumps beyond the
    #: horizon; the batched kernel counts steps started before the horizon.
    events: int = 0

    def summary(self) -> dict:
        """Headline metrics (same keys as the analytical solver)."""
        return {
            "population": self.population,
            "throughput": self.throughput,
            "front_utilization": self.front_utilization,
            "db_utilization": self.db_utilization,
            "front_queue_length": self.front_queue_length,
            "db_queue_length": self.db_queue_length,
        }


class _ChunkedDraws:
    """Buffered unit-exponential and uniform draws from one generator.

    Refills in chunks of ``RNG_CHUNK`` (one numpy call per chunk) and hands
    out plain Python floats, which keeps the per-event cost of the simulation
    loop at a couple of list indexings instead of numpy method dispatches.
    """

    __slots__ = ("rng", "_exp", "_exp_pos", "_uni", "_uni_pos", "_uni_refills")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._exp: list[float] = []
        self._exp_pos = 0
        self._uni: list[float] = []
        self._uni_pos = 0
        self._uni_refills = 0

    def exponential(self) -> float:
        """Next unit-rate exponential variate (scale at the call site)."""
        pos = self._exp_pos
        if pos >= len(self._exp):
            self._exp = self.rng.standard_exponential(RNG_CHUNK).tolist()
            pos = 0
        self._exp_pos = pos + 1
        return self._exp[pos]

    def uniform(self) -> float:
        """Next uniform variate on ``[0, 1)``."""
        pos = self._uni_pos
        if pos >= len(self._uni):
            self._uni = self.rng.random(RNG_CHUNK).tolist()
            self._uni_refills += 1
            pos = 0
        self._uni_pos = pos + 1
        return self._uni[pos]

    @property
    def uniforms_consumed(self) -> int:
        """Uniform variates handed out so far (a free per-jump counter).

        Each MAP jump consumes exactly one uniform (and each initial-phase
        draw one more), so this counts MAP jumps without touching the hot
        loop: only the rare refill increments a counter.
        """
        if self._uni_refills == 0:
            return 0
        return (self._uni_refills - 1) * RNG_CHUNK + self._uni_pos


class _MapServiceState:
    """Incremental sampling of a MAP's completion process for one server."""

    def __init__(self, map_process: MAP, draws: _ChunkedDraws) -> None:
        self.draws = draws
        order = map_process.order
        # Initial phase by inverse CDF from one *buffered* uniform, so every
        # draw of a run flows through the documented chunked streams (a raw
        # ``rng.choice`` here would consume the bit stream out of band).
        stationary_cum = np.cumsum(map_process.embedded_stationary).tolist()
        self.phase = min(bisect_right(stationary_cum, draws.uniform()), order - 1)
        self.order = order
        self.mean_sojourns = (-1.0 / np.diag(map_process.D0)).tolist()
        # Per-phase cumulative jump distribution over the 2K outcomes
        # (K hidden D0 transitions, then K marked D1 transitions), precomputed
        # as plain lists so the hot loop is one buffered exponential draw plus
        # one bisect on a K-element list.
        rates = -np.diag(map_process.D0)
        hidden = np.maximum(map_process.D0, 0.0)
        np.fill_diagonal(hidden, 0.0)
        marked = np.maximum(map_process.D1, 0.0)
        jump_probabilities = np.hstack([hidden, marked]) / rates[:, None]
        self.jump_cdf = np.cumsum(jump_probabilities, axis=1).tolist()

    def sample_completion_interval(self) -> float:
        """Busy time until the next completion event, advancing the phase."""
        elapsed = 0.0
        order = self.order
        last_jump = 2 * order - 1
        draws = self.draws
        mean_sojourns = self.mean_sojourns
        jump_cdf = self.jump_cdf
        while True:
            phase = self.phase
            elapsed += draws.exponential() * mean_sojourns[phase]
            jump = bisect_right(jump_cdf[phase], draws.uniform())
            if jump > last_jump:
                jump = last_jump
            if jump >= order:
                self.phase = jump - order
                return elapsed
            self.phase = jump


def simulate_closed_map_network(
    front_service: MAP,
    db_service: MAP,
    think_time: float,
    population: int,
    horizon: float,
    warmup: float = 0.0,
    rng: np.random.Generator | None = None,
) -> ClosedNetworkSimResult:
    """Simulate the closed network for ``horizon`` simulated seconds.

    Parameters
    ----------
    front_service, db_service:
        Service MAPs of the two queues.
    think_time:
        Mean exponential think time (must be positive; an infinite-server
        station with zero delay would make the event loop degenerate).
    population:
        Number of circulating customers.
    horizon:
        Total simulated time.
    warmup:
        Initial interval excluded from all estimates.
    rng:
        Random generator (a fresh default generator when omitted).
    """
    if think_time <= 0:
        raise ValueError("think_time must be positive for the simulator")
    if population < 1:
        raise ValueError("population must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if horizon <= warmup:
        raise ValueError("horizon must exceed warmup")
    if rng is None:
        rng = np.random.default_rng()

    draws = _ChunkedDraws(rng)
    front_state = _MapServiceState(front_service, draws)
    db_state = _MapServiceState(db_service, draws)

    # State variables.
    thinking = population
    front_queue = 0
    db_queue = 0
    clock = 0.0
    next_think_completion = np.inf
    next_front_completion = np.inf
    next_db_completion = np.inf
    # Remaining busy work until the next MAP completion at each server (the
    # MAP interval is consumed only while the server is busy).
    front_residual = front_state.sample_completion_interval()
    db_residual = db_state.sample_completion_interval()

    def think_rate() -> float:
        return thinking / think_time if thinking > 0 else 0.0

    # Statistics.
    completed = 0
    think_events = 0
    busy_front = 0.0
    busy_db = 0.0
    area_front = 0.0
    area_db = 0.0
    measured_time = 0.0

    def schedule_think() -> float:
        rate = think_rate()
        return clock + draws.exponential() / rate if rate > 0 else np.inf

    next_think_completion = schedule_think()

    while clock < horizon:
        next_front_completion = clock + front_residual if front_queue > 0 else np.inf
        next_db_completion = clock + db_residual if db_queue > 0 else np.inf
        next_time = min(next_think_completion, next_front_completion, next_db_completion)
        if next_time == np.inf or next_time > horizon:
            next_time = horizon
        elapsed = next_time - clock
        in_measurement = max(0.0, min(next_time, horizon) - max(clock, warmup))
        if in_measurement > 0:
            measured_time += in_measurement
            if front_queue > 0:
                busy_front += in_measurement
                area_front += in_measurement * front_queue
            if db_queue > 0:
                busy_db += in_measurement
                area_db += in_measurement * db_queue
        # Consume busy time from the MAP completion intervals.
        if front_queue > 0:
            front_residual -= elapsed
        if db_queue > 0:
            db_residual -= elapsed
        clock = next_time
        if clock >= horizon:
            break
        if next_time == next_think_completion:
            thinking -= 1
            front_queue += 1
            think_events += 1
            next_think_completion = schedule_think()
        elif next_time == next_front_completion:
            front_queue -= 1
            db_queue += 1
            front_residual = front_state.sample_completion_interval()
        else:
            db_queue -= 1
            thinking += 1
            db_residual = db_state.sample_completion_interval()
            next_think_completion = schedule_think()
            if clock >= warmup:
                completed += 1

    # The loop intervals tile [0, horizon] exactly, so the accumulated
    # measurement time equals horizon - warmup up to float rounding; the
    # accumulated value is used as the denominator so that time-average and
    # count estimates stay mutually consistent.
    duration = measured_time
    # Jump-chain transitions: think completions plus the MAP jumps consumed
    # from the uniform stream (minus the two initial-phase draws).
    events = think_events + draws.uniforms_consumed - 2
    return ClosedNetworkSimResult(
        population=population,
        think_time=think_time,
        horizon=horizon,
        throughput=completed / duration,
        front_utilization=busy_front / duration,
        db_utilization=busy_db / duration,
        front_queue_length=area_front / duration,
        db_queue_length=area_db / duration,
        completed=completed,
        warmup=warmup,
        measured_time=measured_time,
        events=events,
    )
