"""Discrete-event simulation substrate.

* :mod:`~repro.simulation.events` — a minimal event queue with lazy
  invalidation, shared by all simulators,
* :mod:`~repro.simulation.ps_server` — an exact processor-sharing server
  based on virtual (attained-service) time,
* :mod:`~repro.simulation.trace_queue` — the trace-driven open queue used for
  Table 1 (Poisson arrivals, service times read from a trace, FCFS),
* :mod:`~repro.simulation.closed_network` — a scalar event-loop simulator of
  the abstract closed network of Figure 9 (delay station plus two servers
  whose service processes are MAPs), used to cross-validate the analytical
  solver,
* :mod:`~repro.simulation.batched` — a vectorized kernel that advances every
  replication of that network in lockstep as numpy arrays (the ``batched``
  simulation backend of the experiment engine),
* :mod:`~repro.simulation.timevarying` — scalar and batched jump-chain
  kernels for *time-varying* timelines (diurnal curves, flash crowds,
  regime-switching MAPs), with per-segment statistics,
* :mod:`~repro.simulation.random_streams` — seeded random-stream management.
"""

from repro.simulation.events import EventQueue
from repro.simulation.ps_server import ProcessorSharingServer
from repro.simulation.trace_queue import TraceQueueResult, simulate_mtrace1
from repro.simulation.closed_network import (
    ClosedNetworkSimResult,
    simulate_closed_map_network,
)
from repro.simulation.batched import (
    BATCH_RNG_CHUNK,
    SIM_BACKENDS,
    simulate_closed_map_network_batch,
)
from repro.simulation.timevarying import (
    SegmentSimStats,
    TimeVaryingSimResult,
    simulate_timevarying_closed_map_network,
    simulate_timevarying_closed_map_network_batch,
)
from repro.simulation.random_streams import RandomStreams, derive_seed, named_seed_sequence

__all__ = [
    "EventQueue",
    "ProcessorSharingServer",
    "TraceQueueResult",
    "simulate_mtrace1",
    "ClosedNetworkSimResult",
    "simulate_closed_map_network",
    "simulate_closed_map_network_batch",
    "BATCH_RNG_CHUNK",
    "SIM_BACKENDS",
    "SegmentSimStats",
    "TimeVaryingSimResult",
    "simulate_timevarying_closed_map_network",
    "simulate_timevarying_closed_map_network_batch",
    "RandomStreams",
    "derive_seed",
    "named_seed_sequence",
]
