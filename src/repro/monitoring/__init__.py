"""Monitoring substrate: the analogue of `sar` and HP (Mercury) Diagnostics.

The paper's methodology deliberately consumes only the kind of coarse data
that commodity monitoring tools emit.  This subpackage provides:

* :mod:`~repro.monitoring.windows` — windowed accumulators for counts and for
  time-weighted signals (busy time, queue length),
* :mod:`~repro.monitoring.collector` — per-server monitors that turn raw
  simulation events into utilisation / completion-count / queue-length series
  at a configurable granularity,
* :mod:`~repro.monitoring.busy_periods` — extraction of busy periods from
  utilisation series,
* :mod:`~repro.monitoring.regression` — utilisation-regression estimation of
  per-class mean service demands (the standard parameterisation of the MVA
  baseline).
"""

from repro.monitoring.windows import CountWindows, TimeWeightedWindows
from repro.monitoring.collector import ServerMonitor, MonitoringSeries
from repro.monitoring.busy_periods import busy_periods_from_utilization, BusyPeriod
from repro.monitoring.regression import estimate_service_demands, RegressionResult

__all__ = [
    "CountWindows",
    "TimeWeightedWindows",
    "ServerMonitor",
    "MonitoringSeries",
    "busy_periods_from_utilization",
    "BusyPeriod",
    "estimate_service_demands",
    "RegressionResult",
]
