"""Per-server monitors.

A :class:`ServerMonitor` mimics the combination of monitoring tools used in
the paper's testbed:

* utilisation samples at a fine granularity (`sar`, 1 second by default),
* completed-request counts at a coarser granularity (HP Diagnostics,
  5 seconds by default),
* time-averaged queue length at the fine granularity (used for the
  bottleneck-switch analysis of Figures 6–8).

Simulators call :meth:`ServerMonitor.record_busy`, :meth:`record_completion`
and :meth:`record_queue_length` as the simulation progresses; at the end,
:meth:`ServerMonitor.series` snapshots everything into an immutable
:class:`MonitoringSeries` that feeds the model-building pipeline of
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitoring.windows import CountWindows, TimeWeightedWindows

__all__ = ["MonitoringSeries", "ServerMonitor"]


@dataclass(frozen=True)
class MonitoringSeries:
    """Immutable snapshot of the monitoring data of one server."""

    name: str
    utilization_window: float
    utilization: np.ndarray
    completion_window: float
    completions: np.ndarray
    queue_length: np.ndarray

    @property
    def mean_utilization(self) -> float:
        """Average utilisation over the monitoring horizon.

        Raises :class:`ValueError` on an empty series: a silent ``0.0`` (the
        historical behaviour) reads as "the server was idle" when it really
        means "nothing was monitored", which poisons a live estimator window.
        """
        if self.utilization.size == 0:
            raise ValueError(
                f"monitor {self.name!r} holds no utilization windows; "
                "snapshot a positive horizon before reading mean_utilization"
            )
        return float(self.utilization.mean())

    @property
    def throughput(self) -> float:
        """Average completion rate (requests per second).

        Raises :class:`ValueError` on an empty series instead of reporting a
        throughput of zero for a horizon that was never observed.
        """
        if self.completions.size == 0:
            raise ValueError(
                f"monitor {self.name!r} holds no completion windows; "
                "snapshot a positive horizon before reading throughput"
            )
        return float(self.completions.sum() / (self.completions.size * self.completion_window))

    @property
    def mean_service_time(self) -> float:
        """Utilisation-law estimate of the mean service time.

        Raises :class:`ValueError` when no completions were recorded — the
        historical ``NaN`` return silently propagated through model fitting
        and produced NaN forecasts instead of an actionable error.
        """
        total_busy = float(self.utilization.sum()) * self.utilization_window
        total_completed = float(self.completions.sum())
        if total_completed <= 0:
            raise ValueError(
                f"monitor {self.name!r} recorded no completions; the "
                "utilisation-law mean service time is undefined"
            )
        return total_busy / total_completed

    def completion_utilization(self) -> np.ndarray:
        """Utilisation aggregated onto the (coarser) completion windows.

        Used when the model-building pipeline needs utilisation and
        completion counts on the same time base.
        """
        ratio = self.completion_window / self.utilization_window
        factor = int(round(ratio))
        if abs(ratio - factor) > 1e-9 or factor < 1:
            raise ValueError("completion window must be an integer multiple of the utilization window")
        usable = (self.utilization.size // factor) * factor
        if usable == 0:
            return np.empty(0)
        reshaped = self.utilization[:usable].reshape(-1, factor)
        return reshaped.mean(axis=1)

    def aligned_completions(self) -> np.ndarray:
        """Completion counts truncated to the same length as :meth:`completion_utilization`."""
        aligned_length = self.completion_utilization().size
        return self.completions[:aligned_length]


class ServerMonitor:
    """Collects busy time, completions and queue length for one server."""

    def __init__(
        self,
        name: str,
        utilization_window: float = 1.0,
        completion_window: float = 5.0,
    ) -> None:
        if completion_window < utilization_window:
            raise ValueError("the completion window must not be finer than the utilization window")
        self.name = name
        self.utilization_window = float(utilization_window)
        self.completion_window = float(completion_window)
        self._busy = TimeWeightedWindows(utilization_window)
        self._queue = TimeWeightedWindows(utilization_window)
        self._completions = CountWindows(completion_window)

    def record_busy(self, start: float, end: float) -> None:
        """Record that the server was busy over ``[start, end)``."""
        self._busy.record(start, end, 1.0)

    def record_queue_length(self, start: float, end: float, queue_length: float) -> None:
        """Record that ``queue_length`` jobs were present over ``[start, end)``."""
        self._queue.record(start, end, queue_length)

    def record_completion(self, time: float, count: float = 1.0) -> None:
        """Record ``count`` request completions at the given time."""
        self._completions.record(time, count)

    def series(self, horizon: float) -> MonitoringSeries:
        """Snapshot the collected data over ``[0, horizon)``.

        ``horizon`` must be positive and finite: a zero, negative or
        non-finite horizon would produce empty (or nonsensical) series whose
        derived statistics divide by zero downstream.
        """
        horizon = float(horizon)
        if not np.isfinite(horizon) or horizon <= 0:
            raise ValueError(
                f"monitoring horizon must be a positive finite number of "
                f"seconds, got {horizon!r}"
            )
        utilization = np.clip(self._busy.series(horizon, normalize=True), 0.0, 1.0)
        queue_length = self._queue.series(horizon, normalize=True)
        completions = self._completions.series(horizon)
        return MonitoringSeries(
            name=self.name,
            utilization_window=self.utilization_window,
            utilization=utilization,
            completion_window=self.completion_window,
            completions=completions,
            queue_length=queue_length,
        )
