"""Utilisation-regression estimation of mean service demands.

The MVA baseline of the paper is parameterised with mean service demands
obtained by linear regression of CPU utilisation on per-class completion
counts (the approach of R-Capriccio and related tools): for monitoring
window ``k``,

    U_k * T  ≈  u0 * T + sum_c  d_c * n_{c,k}

where ``d_c`` is the CPU demand of one transaction of class ``c`` and ``u0``
captures background activity.  A non-negative least-squares fit keeps the
demands physically meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

__all__ = ["RegressionResult", "estimate_service_demands"]


@dataclass(frozen=True)
class RegressionResult:
    """Result of the utilisation regression."""

    demands: dict[str, float]
    background_utilization: float
    residual_norm: float
    r_squared: float

    def demand(self, transaction: str) -> float:
        """Mean CPU demand (seconds) of one transaction of the given class."""
        return self.demands[transaction]

    def aggregate_demand(self, mix: dict[str, float]) -> float:
        """Mean demand of a transaction drawn from the given mix."""
        total_weight = float(sum(mix.values()))
        if total_weight <= 0:
            raise ValueError("mix weights must sum to a positive value")
        return sum(self.demands.get(name, 0.0) * weight for name, weight in mix.items()) / total_weight


def estimate_service_demands(
    utilizations,
    class_counts: dict[str, np.ndarray],
    period: float,
    fit_background: bool = True,
) -> RegressionResult:
    """Estimate per-class service demands from windowed monitoring data.

    Parameters
    ----------
    utilizations:
        Per-window utilisation samples ``U_k`` in ``[0, 1]``.
    class_counts:
        Mapping from class name to the per-window completed-request counts of
        that class (all arrays must have the same length as ``utilizations``).
    period:
        Window length ``T`` in seconds.
    fit_background:
        Whether to include a constant background-utilisation term.
    """
    utilizations = np.asarray(utilizations, dtype=float).reshape(-1)
    if period <= 0:
        raise ValueError("period must be positive")
    if not class_counts:
        raise ValueError("at least one transaction class is required")
    names = list(class_counts.keys())
    columns = []
    for name in names:
        counts = np.asarray(class_counts[name], dtype=float).reshape(-1)
        if counts.shape != utilizations.shape:
            raise ValueError("counts for class %r have the wrong length" % name)
        columns.append(counts)
    design = np.column_stack(columns)
    if fit_background:
        design = np.column_stack([design, np.full(utilizations.size, period)])
    target = utilizations * period
    solution, residual = nnls(design, target)
    fitted = design @ solution
    total_variance = float(((target - target.mean()) ** 2).sum())
    explained = total_variance - float(((target - fitted) ** 2).sum())
    r_squared = explained / total_variance if total_variance > 0 else 1.0
    demands = {name: float(solution[i]) for i, name in enumerate(names)}
    background = float(solution[-1]) if fit_background else 0.0
    return RegressionResult(
        demands=demands,
        background_utilization=background,
        residual_norm=float(residual),
        r_squared=float(r_squared),
    )
