"""Busy-period extraction from utilisation series.

The Figure-2 estimator works directly on per-window busy times
``B_k = U_k * T``; for diagnostic purposes it is often useful to look at the
*maximal busy periods* instead — maximal runs of consecutive windows whose
utilisation exceeds a threshold — e.g. to visualise how long the congestion
episodes caused by bursty service are.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BusyPeriod", "busy_periods_from_utilization"]


@dataclass(frozen=True)
class BusyPeriod:
    """A maximal run of busy monitoring windows."""

    start_index: int
    end_index: int  # inclusive
    busy_time: float
    completions: float

    @property
    def num_windows(self) -> int:
        """Number of consecutive windows in the busy period."""
        return self.end_index - self.start_index + 1


def busy_periods_from_utilization(
    utilizations,
    period: float,
    completions=None,
    threshold: float = 0.0,
) -> list[BusyPeriod]:
    """Extract maximal busy periods from a utilisation series.

    Parameters
    ----------
    utilizations:
        Per-window utilisation samples in ``[0, 1]``.
    period:
        Window length in seconds.
    completions:
        Optional per-window completion counts accumulated into each busy
        period (zeros when omitted).
    threshold:
        A window is busy when its utilisation is strictly greater than this
        value.
    """
    utilizations = np.asarray(utilizations, dtype=float).reshape(-1)
    if period <= 0:
        raise ValueError("period must be positive")
    if completions is None:
        completions = np.zeros_like(utilizations)
    else:
        completions = np.asarray(completions, dtype=float).reshape(-1)
        if completions.shape != utilizations.shape:
            raise ValueError("completions must have the same length as utilizations")
    periods: list[BusyPeriod] = []
    start = None
    busy_time = 0.0
    completed = 0.0
    for index, utilization in enumerate(utilizations):
        if utilization > threshold:
            if start is None:
                start = index
                busy_time = 0.0
                completed = 0.0
            busy_time += utilization * period
            completed += completions[index]
        else:
            if start is not None:
                periods.append(BusyPeriod(start, index - 1, busy_time, completed))
                start = None
    if start is not None:
        periods.append(BusyPeriod(start, len(utilizations) - 1, busy_time, completed))
    return periods
