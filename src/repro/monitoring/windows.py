"""Windowed accumulators.

Monitoring tools report per-window aggregates: the number of completed
requests in each 5-second Diagnostics window, the busy fraction of each
1-second `sar` window, the average queue length over a window, and so on.
The two accumulators below convert a stream of point events / piecewise
constant signals into such fixed-window series.

Window semantics
----------------
Both accumulators share one half-open convention: window ``k`` is the
interval ``[k*W, (k+1)*W)``.  Concretely:

* a point event at time ``t`` lands in window ``floor(t / W)`` — an event
  exactly on a boundary opens the *next* window (``record(5.0)`` with
  ``W = 1`` counts in window 5),
* a piecewise-constant interval ``[start, end)`` excludes its right
  endpoint — an interval ending exactly on a boundary does *not* open the
  next window (``record(0.0, 5.0, v)`` with ``W = 1`` fills windows 0–4 and
  nothing else), so ``series()`` has exactly ``ceil(t_end / W)`` entries,
* ``series(horizon=H)`` pads the series with zero windows up to
  ``ceil(H / W)`` entries but never discards recorded data: windows holding
  recorded events or mass beyond the horizon are always returned.  (The
  historical behaviour silently truncated them, which dropped events landing
  exactly at the horizon.)
"""

from __future__ import annotations

import numpy as np

__all__ = ["CountWindows", "TimeWeightedWindows"]


class CountWindows:
    """Counts point events per fixed-length window.

    Windows are ``[k*W, (k+1)*W)`` for ``k = 0, 1, ...``; the horizon may be
    extended lazily as events arrive.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._counts: list[float] = []

    def record(self, time: float, amount: float = 1.0) -> None:
        """Record ``amount`` events at the given absolute time."""
        if time < 0:
            raise ValueError("time must be non-negative")
        index = int(time // self.window)
        if index >= len(self._counts):
            self._counts.extend([0.0] * (index + 1 - len(self._counts)))
        self._counts[index] += amount

    def series(self, horizon: float | None = None) -> np.ndarray:
        """Per-window counts, zero-padded up to ``horizon``.

        The horizon only pads: recorded events are never discarded, so an
        event landing exactly at ``horizon`` (which the half-open convention
        places in window ``horizon / W``) stays in the series.
        """
        counts = list(self._counts)
        if horizon is not None:
            needed = int(np.ceil(horizon / self.window))
            if needed > len(counts):
                counts.extend([0.0] * (needed - len(counts)))
        return np.asarray(counts, dtype=float)


class TimeWeightedWindows:
    """Integrates a piecewise-constant signal over fixed-length windows.

    Typical uses: busy time per window (value 1 while the server is busy,
    0 otherwise — dividing by the window length yields the utilisation) and
    queue-length integrals (value = current queue length — dividing by the
    window length yields the average queue length).
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._integrals: list[float] = []

    def record(self, start: float, end: float, value: float) -> None:
        """Add ``value`` integrated over the interval ``[start, end)``."""
        if end < start:
            raise ValueError("end must not precede start")
        if value == 0.0 or end == start:
            return
        if start < 0:
            raise ValueError("start must be non-negative")
        first = int(start // self.window)
        last = int(end // self.window)
        if end == last * self.window:
            # The interval is half-open: an end exactly on a window boundary
            # contributes nothing to the window starting there (appending it
            # would add a spurious trailing zero window to the series).
            last -= 1
        if last >= len(self._integrals):
            self._integrals.extend([0.0] * (last + 1 - len(self._integrals)))
        if first == last:
            self._integrals[first] += value * (end - start)
            return
        # First partial window.
        self._integrals[first] += value * ((first + 1) * self.window - start)
        # Full windows in between.
        for index in range(first + 1, last):
            self._integrals[index] += value * self.window
        # Last partial window.
        self._integrals[last] += value * (end - last * self.window)

    def series(self, horizon: float | None = None, normalize: bool = True) -> np.ndarray:
        """Per-window integrals, optionally divided by the window length.

        Like :meth:`CountWindows.series`, the horizon only pads with zero
        windows — recorded mass is never truncated away.
        """
        integrals = list(self._integrals)
        if horizon is not None:
            needed = int(np.ceil(horizon / self.window))
            if needed > len(integrals):
                integrals.extend([0.0] * (needed - len(integrals)))
        series = np.asarray(integrals, dtype=float)
        if normalize:
            series = series / self.window
        return series
