"""Windowed accumulators.

Monitoring tools report per-window aggregates: the number of completed
requests in each 5-second Diagnostics window, the busy fraction of each
1-second `sar` window, the average queue length over a window, and so on.
The two accumulators below convert a stream of point events / piecewise
constant signals into such fixed-window series.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CountWindows", "TimeWeightedWindows"]


class CountWindows:
    """Counts point events per fixed-length window.

    Windows are ``[k*W, (k+1)*W)`` for ``k = 0, 1, ...``; the horizon may be
    extended lazily as events arrive.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._counts: list[float] = []

    def record(self, time: float, amount: float = 1.0) -> None:
        """Record ``amount`` events at the given absolute time."""
        if time < 0:
            raise ValueError("time must be non-negative")
        index = int(time // self.window)
        if index >= len(self._counts):
            self._counts.extend([0.0] * (index + 1 - len(self._counts)))
        self._counts[index] += amount

    def series(self, horizon: float | None = None) -> np.ndarray:
        """Return the per-window counts, padded with zeros up to ``horizon``."""
        counts = list(self._counts)
        if horizon is not None:
            needed = int(np.ceil(horizon / self.window))
            if needed > len(counts):
                counts.extend([0.0] * (needed - len(counts)))
            else:
                counts = counts[:needed]
        return np.asarray(counts, dtype=float)


class TimeWeightedWindows:
    """Integrates a piecewise-constant signal over fixed-length windows.

    Typical uses: busy time per window (value 1 while the server is busy,
    0 otherwise — dividing by the window length yields the utilisation) and
    queue-length integrals (value = current queue length — dividing by the
    window length yields the average queue length).
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._integrals: list[float] = []

    def record(self, start: float, end: float, value: float) -> None:
        """Add ``value`` integrated over the interval ``[start, end)``."""
        if end < start:
            raise ValueError("end must not precede start")
        if value == 0.0 or end == start:
            return
        if start < 0:
            raise ValueError("start must be non-negative")
        first = int(start // self.window)
        last = int(end // self.window)
        if last >= len(self._integrals):
            self._integrals.extend([0.0] * (last + 1 - len(self._integrals)))
        if first == last:
            self._integrals[first] += value * (end - start)
            return
        # First partial window.
        self._integrals[first] += value * ((first + 1) * self.window - start)
        # Full windows in between.
        for index in range(first + 1, last):
            self._integrals[index] += value * self.window
        # Last partial window.
        self._integrals[last] += value * (end - last * self.window)

    def series(self, horizon: float | None = None, normalize: bool = True) -> np.ndarray:
        """Per-window integrals, optionally divided by the window length."""
        integrals = list(self._integrals)
        if horizon is not None:
            needed = int(np.ceil(horizon / self.window))
            if needed > len(integrals):
                integrals.extend([0.0] * (needed - len(integrals)))
            else:
                integrals = integrals[:needed]
        series = np.asarray(integrals, dtype=float)
        if normalize:
            series = series / self.window
        return series
