"""Last-known-good model registry: crash-safe promotion, warm restarts.

The live service must never stop serving forecasts because the *latest*
refit failed — it degrades to the last model that both fitted and solved.
This module persists that model (and the forecast computed from it) through
the experiment framework's artifact layer: each promotion writes two
digest-checked JSON side-files (:func:`...results.write_artifact`, atomic
temp-file + ``os.replace``) under cycle-suffixed names, then atomically
swaps ``registry.json`` to point at them.  A crash between the two steps
leaves the previous registry intact; a corrupt or truncated artifact fails
its SHA-256 check on load and the service falls back to a cold start rather
than serving garbage.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.experiments.results.artifacts import (
    ArtifactIntegrityError,
    ArtifactRef,
    write_artifact,
)
from repro.maps.map_process import MAP

__all__ = ["LastKnownGood", "ModelRegistry", "map_from_payload", "map_to_payload"]

_REGISTRY_NAME = "registry.json"


def map_to_payload(process: MAP) -> dict:
    """JSON-safe encoding of a MAP (exact: floats round-trip via repr)."""
    return {
        "D0": [[float(v) for v in row] for row in np.asarray(process.D0)],
        "D1": [[float(v) for v in row] for row in np.asarray(process.D1)],
    }


def map_from_payload(payload: dict) -> MAP:
    return MAP(
        np.asarray(payload["D0"], dtype=float), np.asarray(payload["D1"], dtype=float)
    )


@dataclass(frozen=True)
class LastKnownGood:
    """The most recently promoted (model, forecast) pair.

    ``model`` holds the fitted per-tier MAPs plus the measurement triples
    they were fitted from; ``forecast`` the what-if table solved from that
    model.  ``window_end`` is the exclusive last estimation window the model
    covers — staleness is measured from it, in windows, so it is exact and
    clock-free.
    """

    cycle: int
    window_end: int
    model: dict
    forecast: dict

    def to_meta(self) -> dict:
        return {"cycle": self.cycle, "window_end": self.window_end}


class ModelRegistry:
    """Durable last-known-good storage under one state directory."""

    def __init__(self, state_dir) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    @property
    def registry_path(self) -> Path:
        return self.state_dir / _REGISTRY_NAME

    # ------------------------------------------------------------------
    def promote(self, good: LastKnownGood) -> None:
        """Persist a new last-known-good pair (crash-safe, then prune).

        Ordering is the crash-safety argument: (1) write both artifacts
        under fresh cycle-suffixed names, (2) atomically replace
        ``registry.json``, (3) delete artifacts the registry no longer
        references.  Dying between any two steps leaves a registry whose
        references all verify.
        """
        model_ref = write_artifact(
            good.model, self.state_dir, f"model-{good.cycle:08d}"
        )
        forecast_ref = write_artifact(
            good.forecast, self.state_dir, f"forecast-{good.cycle:08d}"
        )
        payload = {
            "meta": good.to_meta(),
            "model": model_ref.to_dict(),
            "forecast": forecast_ref.to_dict(),
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        tmp = self.registry_path.with_name(
            f"{_REGISTRY_NAME}.{os.getpid()}.tmp"
        )
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.registry_path)
        self._prune(keep={Path(model_ref.path).name, Path(forecast_ref.path).name})

    def _prune(self, keep: set[str]) -> None:
        for path in self.state_dir.glob("model-*.json"):
            if path.name not in keep:
                path.unlink(missing_ok=True)
        for path in self.state_dir.glob("forecast-*.json"):
            if path.name not in keep:
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def load(self) -> LastKnownGood | None:
        """The persisted last-known-good, or ``None`` on a cold start.

        Any corruption — unreadable registry, malformed JSON, artifact
        failing its digest — degrades to ``None``: the service starts cold
        and refits rather than serving a forecast it cannot trust.
        """
        try:
            payload = json.loads(self.registry_path.read_text(encoding="utf-8"))
            meta = payload["meta"]
            model = ArtifactRef.from_dict(payload["model"], self.state_dir).load()
            forecast = ArtifactRef.from_dict(
                payload["forecast"], self.state_dir
            ).load()
        except (OSError, ValueError, KeyError, ArtifactIntegrityError):
            return None
        return LastKnownGood(
            cycle=int(meta["cycle"]),
            window_end=int(meta["window_end"]),
            model=model,
            forecast=forecast,
        )
