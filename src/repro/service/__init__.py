"""Self-healing live what-if service.

The offline pipeline of :mod:`repro.core` answers one what-if question from
one finished trace.  This package keeps the answer *continuously* fresh
against a growing trace, and keeps answering through failures:

* :mod:`~repro.service.streaming` — chunked trace readers and exactly
  mergeable windowed statistics (multi-GB traces in O(windows) RAM);
* :mod:`~repro.service.pipeline` — supervised stage execution (reusing the
  experiment framework's supervision envelope), cycle-denominated circuit
  breakers and drop-counting bounded queues;
* :mod:`~repro.service.registry` — the durable last-known-good
  (model, forecast) pair served while refits fail;
* :mod:`~repro.service.daemon` — the ingest → fit → solve → promote loop,
  with bit-identical checkpoint/resume and an atomic health snapshot.

CLI: ``python -m repro.experiments service run|status|forecast``.
"""

from repro.service.daemon import CheckpointMismatchError, ServiceConfig, WhatIfService
from repro.service.pipeline import BoundedWindowQueue, CircuitBreaker, StageOutcome
from repro.service.registry import LastKnownGood, ModelRegistry
from repro.service.streaming import (
    RECORD_BYTES,
    TraceChunkReader,
    WindowSnapshot,
    WindowedTraceAccumulator,
    bin_trace_windows,
    read_trace_chunk,
    synthesize_service_trace,
    write_trace_records,
)

__all__ = [
    "BoundedWindowQueue",
    "CheckpointMismatchError",
    "CircuitBreaker",
    "LastKnownGood",
    "ModelRegistry",
    "RECORD_BYTES",
    "ServiceConfig",
    "StageOutcome",
    "TraceChunkReader",
    "WhatIfService",
    "WindowSnapshot",
    "WindowedTraceAccumulator",
    "bin_trace_windows",
    "read_trace_chunk",
    "synthesize_service_trace",
    "write_trace_records",
]
