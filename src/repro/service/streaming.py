"""Streaming trace ingestion: chunked readers and *mergeable* window stats.

The paper's pipeline consumes per-window utilisation and completion-count
series.  The one-shot scripts built those series in memory from the whole
trace; at production scale a trace is a multi-GB append-only file, so this
module rebuilds the front of the pipeline around two primitives:

* :func:`read_trace_chunk` / :class:`TraceChunkReader` — bounded-size numpy
  chunks from a binary trace file (or FIFO), resumable by event offset;
* :class:`WindowedTraceAccumulator` — an online, *mergeable* windowed
  estimator state: ingesting a trace chunk-by-chunk (any chunk partition,
  including chunk edges falling inside a window) and merging the per-chunk
  window statistics yields **exactly** the arrays the batch computation
  produces on the whole trace, so the downstream
  :func:`repro.core.dispersion.estimate_index_of_dispersion` /
  moment / percentile estimates are bit-identical while RAM stays
  O(windows), not O(events).

Exactness is by construction, not by accident: trace timestamps are integer
*ticks* (``ticks_per_second`` of them per second, microseconds by default)
and every per-window statistic is accumulated in ``int64`` — integer
addition is associative, so the chunk partition cannot influence the sums.
The conversion to float utilisations happens once, at snapshot time, as a
single division per window — a pure function of the (exact) integer state.

Trace format
------------
A trace is a flat sequence of little-endian ``int64`` pairs
``(start_ticks, duration_ticks)``: the server was busy with one request over
``[start, start + duration)`` and completed it at ``start + duration``.
Records must be non-overlapping (one server) but need not be sorted beyond
that.  16 bytes per event, no header — a file can be appended to while a
reader tails it, and a partial trailing record (a writer mid-append) is
simply not consumed yet.

Window semantics match :mod:`repro.monitoring.windows`: window ``k`` covers
``[k*W, (k+1)*W)`` ticks, half-open, and a completion exactly on a boundary
opens the *next* window.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.dispersion import DispersionEstimate, estimate_index_of_dispersion
from repro.core.percentiles import estimate_service_percentile

__all__ = [
    "RECORD_BYTES",
    "TraceChunkReader",
    "WindowSnapshot",
    "WindowedTraceAccumulator",
    "bin_trace_windows",
    "read_trace_chunk",
    "synthesize_service_trace",
    "write_trace_records",
]

#: Bytes per trace record: two little-endian int64 (start, duration).
RECORD_BYTES = 16

_RECORD_DTYPE = np.dtype("<i8")


# ----------------------------------------------------------------------
# Reading and writing
# ----------------------------------------------------------------------
def write_trace_records(path, starts, durations, append: bool = False) -> int:
    """Append ``(start, duration)`` int64 records to a trace file.

    Returns the number of records written.  Values must be non-negative
    integers (ticks); floats are rejected rather than silently truncated.
    """
    starts = np.asarray(starts)
    durations = np.asarray(durations)
    if starts.shape != durations.shape or starts.ndim != 1:
        raise ValueError("starts and durations must be 1-D arrays of equal length")
    if not np.issubdtype(starts.dtype, np.integer) or not np.issubdtype(
        durations.dtype, np.integer
    ):
        raise ValueError("trace records are integer ticks; quantize before writing")
    if starts.size and (int(starts.min()) < 0 or int(durations.min()) < 0):
        raise ValueError("trace ticks must be non-negative")
    records = np.empty((starts.size, 2), dtype=_RECORD_DTYPE)
    records[:, 0] = starts
    records[:, 1] = durations
    mode = "ab" if append else "wb"
    with open(path, mode) as stream:
        stream.write(records.tobytes())
    return int(starts.size)


def read_trace_chunk(
    path, offset_events: int, max_events: int
) -> tuple[np.ndarray, int]:
    """Read up to ``max_events`` whole records starting at ``offset_events``.

    Returns ``(records, next_offset)`` where ``records`` is an ``(n, 2)``
    int64 array (possibly empty — the trace has no new complete records yet)
    and ``next_offset = offset_events + n`` is the offset to resume from.
    Partial trailing records (a writer mid-append) are left unconsumed.
    Regular files are seeked to the offset; non-seekable sources (FIFOs) are
    read sequentially from wherever they are — they cannot be resumed by
    offset, which the service surfaces by refusing to checkpoint them.
    """
    if offset_events < 0:
        raise ValueError("offset_events must be non-negative")
    if max_events < 1:
        raise ValueError("max_events must be >= 1")
    with open(path, "rb") as stream:
        if stream.seekable():
            stream.seek(offset_events * RECORD_BYTES)
        data = stream.read(max_events * RECORD_BYTES)
    usable = (len(data) // RECORD_BYTES) * RECORD_BYTES
    if usable == 0:
        return np.empty((0, 2), dtype=np.int64), offset_events
    records = np.frombuffer(data[:usable], dtype=_RECORD_DTYPE).reshape(-1, 2)
    return records.astype(np.int64, copy=False), offset_events + records.shape[0]


class TraceChunkReader:
    """Iterate a trace file in bounded-size chunks, tracking the offset.

    The reader is stateless between chunks apart from the integer event
    offset, which makes it trivially checkpointable: persist ``offset`` and
    construct a new reader with it after a restart.
    """

    def __init__(self, path, chunk_events: int = 65536, offset_events: int = 0) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be >= 1")
        self.path = os.fspath(path)
        self.chunk_events = int(chunk_events)
        self.offset = int(offset_events)

    def read_chunk(self) -> np.ndarray:
        """Consume and return the next chunk (empty when nothing new)."""
        records, self.offset = read_trace_chunk(
            self.path, self.offset, self.chunk_events
        )
        return records

    def __iter__(self):
        while True:
            chunk = self.read_chunk()
            if chunk.shape[0] == 0:
                return
            yield chunk


# ----------------------------------------------------------------------
# Exact windowed binning
# ----------------------------------------------------------------------
def bin_trace_windows(
    starts: np.ndarray, durations: np.ndarray, window_ticks: int, num_windows: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact int64 per-window (busy ticks, completion counts) of one batch.

    Busy time is split across the windows the interval ``[start, end)``
    overlaps (integer tick arithmetic, exact); the completion is counted in
    window ``end // W`` (half-open convention: a completion exactly on a
    boundary opens the next window).  ``num_windows`` sizes the output; it
    must cover every touched window.
    """
    starts = np.asarray(starts, dtype=np.int64)
    durations = np.asarray(durations, dtype=np.int64)
    window = int(window_ticks)
    busy = np.zeros(num_windows, dtype=np.int64)
    completions = np.zeros(num_windows, dtype=np.int64)
    if starts.size == 0:
        return busy, completions
    ends = starts + durations
    np.add.at(completions, ends // window, 1)
    w_first = starts // window
    # Last window holding busy mass: the one containing tick end-1 (empty
    # intervals keep w_last == w_first and contribute zero below).
    w_last = np.maximum((ends - 1) // window, w_first)
    span = w_last - w_first
    single = span == 0
    np.add.at(busy, w_first[single], durations[single])
    multi = ~single
    if np.any(multi):
        np.add.at(busy, w_first[multi], (w_first[multi] + 1) * window - starts[multi])
        np.add.at(busy, w_last[multi], ends[multi] - w_last[multi] * window)
        mid = span >= 2
        if np.any(mid):
            counts = (span[mid] - 1).astype(np.intp)
            total = int(counts.sum())
            # Flatten the per-event ranges w_first+1 .. w_last-1 without a
            # Python loop: event index repeated per middle window, plus the
            # position within the event's own range.
            event_of = np.repeat(np.arange(counts.size), counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            indices = (w_first[mid] + 1)[event_of] + within
            np.add.at(busy, indices, window)
    return busy, completions


@dataclass(frozen=True)
class WindowSnapshot:
    """Float view of a (slice of a) window accumulation, estimator-ready.

    ``utilizations`` and ``completions`` are the exact integer state divided
    once by the window length — identical inputs produce bit-identical
    arrays, so every downstream estimate is a pure function of the integer
    state.
    """

    period: float
    utilizations: np.ndarray
    completions: np.ndarray
    busy_ticks: np.ndarray
    completion_counts: np.ndarray
    window_ticks: int
    ticks_per_second: int

    @property
    def num_windows(self) -> int:
        return int(self.utilizations.size)

    @property
    def total_busy_ticks(self) -> int:
        return int(self.busy_ticks.sum())

    @property
    def total_completions(self) -> int:
        return int(self.completion_counts.sum())

    def mean_service_time(self) -> float:
        """Utilisation-law mean service time over the snapshot, in seconds."""
        completed = self.total_completions
        if completed <= 0:
            raise ValueError("snapshot holds no completions; mean service time undefined")
        return (self.total_busy_ticks / completed) / self.ticks_per_second

    def estimate_dispersion(self, **kwargs) -> DispersionEstimate:
        """Run the Figure-2 estimator on the snapshot's window series."""
        return estimate_index_of_dispersion(
            self.utilizations, self.completions, self.period, **kwargs
        )

    def estimate_p95(self, quantile: float = 0.95) -> float:
        """Busy-period-scaling service-time percentile on the snapshot."""
        return estimate_service_percentile(
            self.utilizations, self.completions, self.period, quantile=quantile
        )


class WindowedTraceAccumulator:
    """Online windowed (busy, completions) statistics with exact merging.

    All state is integer: per-window busy ticks and completion counts from
    tick 0 onward, plus totals.  ``ingest`` folds in a chunk of trace
    records, ``merge`` folds in another accumulator, and because ``int64``
    addition is associative, *any* partition of a trace into chunks —
    ingested in any grouping, merged in any order — reaches exactly the
    state of one batch ingest.  ``state_dict``/``from_state`` round-trip the
    state through JSON-safe integers for bit-identical checkpoint/resume.
    """

    def __init__(self, window_ticks: int, ticks_per_second: int) -> None:
        window_ticks = int(window_ticks)
        ticks_per_second = int(ticks_per_second)
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        if ticks_per_second < 1:
            raise ValueError("ticks_per_second must be >= 1")
        self.window_ticks = window_ticks
        self.ticks_per_second = ticks_per_second
        self._busy = np.zeros(0, dtype=np.int64)
        self._completions = np.zeros(0, dtype=np.int64)
        self.events = 0
        self.max_end_ticks = 0

    # ------------------------------------------------------------------
    @property
    def period(self) -> float:
        """Window length in seconds."""
        return self.window_ticks / self.ticks_per_second

    @property
    def num_windows(self) -> int:
        """Windows touched so far (index 0 through the last with any mass)."""
        return int(self._busy.size)

    @property
    def complete_windows(self) -> int:
        """Windows fully covered by observed trace time.

        Window ``k`` is complete once an event ending at or beyond
        ``(k+1)*W`` has been seen; the trailing window is still filling and
        is excluded from estimation snapshots by the service.
        """
        return int(self.max_end_ticks // self.window_ticks)

    @property
    def total_busy_ticks(self) -> int:
        return int(self._busy.sum())

    @property
    def total_completions(self) -> int:
        return int(self._completions.sum())

    # ------------------------------------------------------------------
    def _grow(self, num_windows: int) -> None:
        if num_windows > self._busy.size:
            pad = num_windows - self._busy.size
            self._busy = np.concatenate([self._busy, np.zeros(pad, dtype=np.int64)])
            self._completions = np.concatenate(
                [self._completions, np.zeros(pad, dtype=np.int64)]
            )

    def ingest(self, records: np.ndarray) -> int:
        """Fold one chunk of ``(start, duration)`` records into the state.

        Returns the number of events ingested.  Records with negative ticks
        are rejected; overlap between records is only detectable (and
        reported) at snapshot time, where a window's busy time exceeding the
        window length proves two records overlapped.
        """
        records = np.asarray(records)
        if records.size == 0:
            return 0
        if records.ndim != 2 or records.shape[1] != 2:
            raise ValueError("trace chunk must be an (n, 2) array of (start, duration)")
        if not np.issubdtype(records.dtype, np.integer):
            raise ValueError("trace chunk must hold integer ticks")
        starts = records[:, 0].astype(np.int64, copy=False)
        durations = records[:, 1].astype(np.int64, copy=False)
        if int(starts.min()) < 0 or int(durations.min()) < 0:
            raise ValueError("trace ticks must be non-negative")
        ends = starts + durations
        max_end = int(ends.max())
        needed = int(max(max_end // self.window_ticks, (max_end - 1) // self.window_ticks)) + 1
        self._grow(needed)
        busy, completions = bin_trace_windows(
            starts, durations, self.window_ticks, needed
        )
        self._busy[:needed] += busy
        self._completions[:needed] += completions
        self.events += int(starts.size)
        self.max_end_ticks = max(self.max_end_ticks, max_end)
        return int(starts.size)

    def merge(self, other: "WindowedTraceAccumulator") -> None:
        """Fold another accumulator into this one (exact, order-free)."""
        if not isinstance(other, WindowedTraceAccumulator):
            raise TypeError("can only merge another WindowedTraceAccumulator")
        if (
            other.window_ticks != self.window_ticks
            or other.ticks_per_second != self.ticks_per_second
        ):
            raise ValueError(
                "cannot merge accumulators with different window geometry: "
                f"{self.window_ticks}t/{self.ticks_per_second}Hz vs "
                f"{other.window_ticks}t/{other.ticks_per_second}Hz"
            )
        self._grow(other._busy.size)
        self._busy[: other._busy.size] += other._busy
        self._completions[: other._completions.size] += other._completions
        self.events += other.events
        self.max_end_ticks = max(self.max_end_ticks, other.max_end_ticks)

    # ------------------------------------------------------------------
    def snapshot(
        self, start_window: int = 0, end_window: int | None = None
    ) -> WindowSnapshot:
        """Float estimator view of windows ``[start_window, end_window)``.

        Raises :class:`ValueError` when a window's busy time exceeds the
        window length — proof that trace records overlapped, which would
        fabricate utilisations above 1 and poison the dispersion estimate.
        """
        if end_window is None:
            end_window = self.num_windows
        if start_window < 0 or end_window < start_window:
            raise ValueError("invalid window slice")
        self._grow(end_window)
        busy = self._busy[start_window:end_window].copy()
        completions = self._completions[start_window:end_window].copy()
        overfull = busy > self.window_ticks
        if np.any(overfull):
            worst = int(np.argmax(busy))
            raise ValueError(
                f"window {start_window + worst} holds {int(busy[worst])} busy "
                f"ticks > window length {self.window_ticks}: trace records "
                "overlap (not a single-server trace?)"
            )
        return WindowSnapshot(
            period=self.period,
            utilizations=busy / self.window_ticks,
            completions=completions.astype(float),
            busy_ticks=busy,
            completion_counts=completions,
            window_ticks=self.window_ticks,
            ticks_per_second=self.ticks_per_second,
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe exact state (all integers — resumes bit-identically)."""
        return {
            "window_ticks": self.window_ticks,
            "ticks_per_second": self.ticks_per_second,
            "events": self.events,
            "max_end_ticks": self.max_end_ticks,
            "busy": [int(v) for v in self._busy],
            "completions": [int(v) for v in self._completions],
        }

    @classmethod
    def from_state(cls, state: dict) -> "WindowedTraceAccumulator":
        accumulator = cls(state["window_ticks"], state["ticks_per_second"])
        accumulator._busy = np.asarray(state["busy"], dtype=np.int64)
        accumulator._completions = np.asarray(state["completions"], dtype=np.int64)
        if accumulator._busy.shape != accumulator._completions.shape:
            raise ValueError("corrupt accumulator state: busy/completions differ in length")
        accumulator.events = int(state["events"])
        accumulator.max_end_ticks = int(state["max_end_ticks"])
        return accumulator


# ----------------------------------------------------------------------
# Synthetic traces
# ----------------------------------------------------------------------
def synthesize_service_trace(
    path,
    events: int,
    mean_service: float,
    scv: float = 4.0,
    utilization: float = 0.5,
    phase_persistence: float = 0.98,
    ticks_per_second: int = 1_000_000,
    seed: int = 0,
    chunk_events: int = 262_144,
    append: bool = False,
) -> int:
    """Write a synthetic bursty single-server trace, chunk by chunk.

    Service times follow a two-phase Markov-modulated hyper-exponential
    (balanced-means split for the requested ``scv``; ``phase_persistence``
    makes slow/fast periods sticky, which lifts the index of dispersion
    above the SCV like the paper's workloads).  Arrivals are Poisson at
    ``utilization / mean_service`` and the single server serves FCFS, so
    busy intervals never overlap.  Generation is chunked: RAM stays
    O(chunk), letting CI synthesize tens of millions of events.

    Returns the end tick of the last event (the trace horizon).
    """
    if events < 1:
        raise ValueError("events must be >= 1")
    if mean_service <= 0 or not 0 < utilization < 1:
        raise ValueError("mean_service must be positive and utilization in (0, 1)")
    if scv < 1.0:
        raise ValueError("scv must be >= 1 for the hyper-exponential family")
    if not 0.0 <= phase_persistence < 1.0:
        raise ValueError("phase_persistence must be in [0, 1)")
    rng = np.random.default_rng(seed)
    # Balanced-means two-phase hyper-exponential: p1/mu1 == p2/mu2, SCV set
    # by the branch asymmetry.
    p1 = 0.5 * (1.0 + np.sqrt((scv - 1.0) / (scv + 1.0)))
    mu1 = 2.0 * p1 / mean_service
    mu2 = 2.0 * (1.0 - p1) / mean_service
    arrival_rate = utilization / mean_service
    carry_arrival = 0.0
    carry_prev_limit = np.int64(0)  # max over previous events of (A_j - P_j)
    carry_prefix = np.int64(0)  # P = cumulative service ticks so far
    carry_phase = 0
    total_written = 0
    last_end = 0
    if not append:
        open(path, "wb").close()
    while total_written < events:
        n = min(chunk_events, events - total_written)
        arrivals = carry_arrival + np.cumsum(rng.exponential(1.0 / arrival_rate, size=n))
        carry_arrival = float(arrivals[-1])
        # Sticky modulation that preserves the marginal branch probabilities:
        # between switch points the phase holds; at a switch a fresh phase is
        # drawn with the hyper-exponential's own (p1, 1-p1) — so the time
        # spent per phase matches the mixture and the mean stays exact, while
        # stickiness correlates consecutive services into bursts.
        blocks = np.cumsum(rng.random(n) > phase_persistence)
        candidates = (rng.random(int(blocks[-1]) + 1) > p1).astype(np.int64)
        candidates[0] = carry_phase
        phases = candidates[blocks]
        carry_phase = int(phases[-1])
        rates = np.where(phases == 0, mu1, mu2)
        services = rng.exponential(1.0, size=n) / rates
        arrival_ticks = np.floor(arrivals * ticks_per_second).astype(np.int64)
        service_ticks = np.maximum(
            np.rint(services * ticks_per_second).astype(np.int64), 1
        )
        # FCFS packing (Lindley in ticks): start_i = P_i + max_{j<=i}(A_j - P_j)
        # where P is the exclusive prefix sum of service ticks.
        prefix = carry_prefix + np.concatenate(
            [[np.int64(0)], np.cumsum(service_ticks)[:-1]]
        )
        limits = np.maximum(
            np.maximum.accumulate(arrival_ticks - prefix), carry_prev_limit
        )
        starts = prefix + limits
        write_trace_records(path, starts, service_ticks, append=True)
        carry_prefix = np.int64(prefix[-1] + service_ticks[-1])
        carry_prev_limit = np.int64(limits[-1])
        last_end = int(starts[-1] + service_ticks[-1])
        total_written += n
    return last_end
