"""Supervised service stages: breakers, bounded queues, worker functions.

Each pipeline stage of the live service (ingest → fit → solve) executes in
its own worker process under the experiment framework's supervision
envelope (:func:`repro.experiments.supervision.run_supervised` — per-stage
wall-clock timeout, bounded retries with jittered backoff, crash
isolation).  The service does not duplicate that machinery; it wraps one
:class:`SupervisedTask` per stage invocation, passes its own row validator,
and sets the failure budget effectively infinite — a stage that exhausts
its retries becomes a :class:`StageOutcome` the daemon degrades on, never
an aborted run.

Two small deterministic mechanisms complete the self-healing story:

* :class:`CircuitBreaker` — after ``threshold`` consecutive stage failures
  the breaker opens and the daemon stops attempting the stage for a number
  of *cycles* (not wall-clock — bit-identical across reruns), doubling the
  hold on every failed half-open probe up to a cap;
* :class:`BoundedWindowQueue` — inter-stage buffering with explicit
  backpressure: when the consumer falls behind, the *oldest* pending
  entries are shed (newest data wins for a live estimator) and every drop
  is counted for the health snapshot.

Fault injection: the service-specific kinds (``fit-diverge``,
``solve-crash``, ``ingest-stall``) are interpreted *inside* the stage
worker functions, each narrowed to the kinds that make sense for it, and
matched against the stage's **lifetime invocation counter** (persisted in
the service checkpoint) rather than the per-invocation retry attempt — so
``fit-diverge:*:2`` deterministically fails the first two refits ever and
lets later ones succeed, which is the degrade→recover arc the chaos smoke
drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.dispersion import estimate_index_of_dispersion
from repro.core.map_fitting import MapFitError, fit_map2_from_measurements
from repro.core.percentiles import estimate_service_percentile
from repro.experiments.faults import active_directives, matching_directive
from repro.experiments.supervision import (
    SupervisedTask,
    SupervisionPolicy,
    run_supervised,
)
from repro.service.registry import map_from_payload, map_to_payload
from repro.service.streaming import WindowedTraceAccumulator, read_trace_chunk

__all__ = [
    "BoundedWindowQueue",
    "CircuitBreaker",
    "StageOutcome",
    "execute_fit",
    "execute_ingest",
    "execute_solve",
    "run_stage",
]

_FIT_KINDS = frozenset({"fit-diverge"})
_SOLVE_KINDS = frozenset({"solve-crash"})
_INGEST_KINDS = frozenset({"ingest-stall"})

#: An injected stall sleeps this long; the stage timeout reaps the worker.
_STALL_SLEEP_SECONDS = 3600.0


# ----------------------------------------------------------------------
# Circuit breaker (cycle-denominated, hence deterministic)
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Classic closed → open → half-open breaker, counted in service cycles.

    ``record_failure``/``record_success`` feed it per attempted invocation;
    ``allow(cycle)`` gates the next one.  While open, attempts are skipped
    until ``backoff_cycles`` cycles have passed, then one half-open probe is
    allowed; a failed probe re-opens with the hold doubled (capped at
    ``backoff_cap_cycles``), a successful probe closes and resets.
    """

    def __init__(
        self,
        threshold: int = 3,
        backoff_cycles: int = 2,
        backoff_cap_cycles: int = 16,
    ) -> None:
        if threshold < 1 or backoff_cycles < 1 or backoff_cap_cycles < backoff_cycles:
            raise ValueError(
                "breaker needs threshold >= 1 and 1 <= backoff_cycles <= cap"
            )
        self.threshold = threshold
        self.base_backoff = backoff_cycles
        self.backoff_cap = backoff_cap_cycles
        self.state = "closed"
        self.consecutive_failures = 0
        self.current_backoff = backoff_cycles
        self.open_until_cycle = 0
        self.opens = 0

    def allow(self, cycle: int) -> bool:
        """Whether the stage may be attempted at this cycle."""
        if self.state == "open":
            if cycle >= self.open_until_cycle:
                self.state = "half-open"
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.current_backoff = self.base_backoff

    def record_failure(self, cycle: int) -> None:
        self.consecutive_failures += 1
        if self.state == "half-open":
            # Failed probe: hold twice as long before the next one.
            self.current_backoff = min(self.current_backoff * 2, self.backoff_cap)
            self._open(cycle)
        elif self.consecutive_failures >= self.threshold:
            self._open(cycle)

    def _open(self, cycle: int) -> None:
        self.state = "open"
        self.open_until_cycle = cycle + self.current_backoff
        self.opens += 1

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "current_backoff": self.current_backoff,
            "open_until_cycle": self.open_until_cycle,
            "opens": self.opens,
        }

    def load_state(self, state: dict) -> None:
        if state["state"] not in ("closed", "open", "half-open"):
            raise ValueError(f"corrupt breaker state {state['state']!r}")
        self.state = state["state"]
        self.consecutive_failures = int(state["consecutive_failures"])
        self.current_backoff = int(state["current_backoff"])
        self.open_until_cycle = int(state["open_until_cycle"])
        self.opens = int(state["opens"])


# ----------------------------------------------------------------------
# Bounded inter-stage queue (sheds oldest, counts drops)
# ----------------------------------------------------------------------
class BoundedWindowQueue:
    """FIFO of pending work items with a hard bound and drop accounting.

    A live estimator prefers fresh windows over old ones, so overflow sheds
    the *oldest* entry.  Every shed is counted; the daemon surfaces the
    counter in the health snapshot so backpressure is visible instead of
    silent.  Items must be JSON-safe (they ride in the checkpoint).
    """

    def __init__(self, maxlen: int) -> None:
        if maxlen < 1:
            raise ValueError("queue maxlen must be >= 1")
        self.maxlen = maxlen
        self.items: list[Any] = []
        self.dropped = 0

    def push(self, item: Any) -> None:
        self.items.append(item)
        while len(self.items) > self.maxlen:
            self.items.pop(0)
            self.dropped += 1

    def pop(self) -> Any:
        return self.items.pop(0)

    def __len__(self) -> int:
        return len(self.items)

    def state_dict(self) -> dict:
        return {"maxlen": self.maxlen, "items": list(self.items), "dropped": self.dropped}

    def load_state(self, state: dict) -> None:
        self.maxlen = int(state["maxlen"])
        self.items = list(state["items"])
        self.dropped = int(state["dropped"])


# ----------------------------------------------------------------------
# Stage execution under the shared supervision envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageOutcome:
    """Settled result of one supervised stage invocation."""

    ok: bool
    value: Any = None
    kind: str | None = None
    message: str | None = None
    retries: int = 0


def _service_rows_valid(rows, task: SupervisedTask) -> bool:
    """Service stage contract: exactly one ``(stage_key, dict)`` row."""
    return (
        isinstance(rows, list)
        and len(rows) == 1
        and isinstance(rows[0], tuple)
        and len(rows[0]) == 2
        and rows[0][0] == task.keys[0]
        and isinstance(rows[0][1], dict)
    )


def run_stage(
    key: str,
    execute: Callable[[Any], list],
    payload: dict,
    timeout: float | None,
    retries: int,
) -> StageOutcome:
    """Run one stage invocation under the shared supervision envelope.

    Reuses :func:`run_supervised` wholesale (worker process, timeout kill,
    retry backoff, crash classification); the effectively-infinite failure
    budget turns "retries exhausted" into a returned outcome instead of a
    raised :class:`FailureBudgetExceeded` — degrading is the daemon's job.
    """
    task = SupervisedTask(payload=payload, keys=(key,), cells=((key, "service", 0, 0),))
    policy = SupervisionPolicy(
        cell_timeout=timeout,
        retries=retries,
        max_failures=1_000_000,
        backoff_base=0.01,
        backoff_cap=0.25,
    )
    value = None
    retried = 0
    failure = None
    for event, data in run_supervised(
        [task], execute, policy, jobs=1, validate_rows=_service_rows_valid
    ):
        if event == "rows":
            value = data[0][1]
        elif event == "retry":
            retried += 1
        elif event == "failures":
            failure = data[0]
    if failure is not None:
        return StageOutcome(
            ok=False, kind=failure.kind, message=failure.message, retries=retried
        )
    if value is None:
        return StageOutcome(
            ok=False, kind="corrupt", message="stage yielded no rows", retries=retried
        )
    return StageOutcome(ok=True, value=value, retries=retried)


def _injected(key: str, invocation: int, kinds: frozenset) -> Any:
    """The matching service fault directive for this stage invocation.

    ``invocation`` is the stage's lifetime counter, deliberately *not* the
    supervision retry attempt — retries of one invocation share the
    injection decision, so ``solve-crash:*:1`` crashes every retry of the
    first solve and the stage settles as a real permanent failure.
    """
    return matching_directive(active_directives(), key, invocation, kinds=kinds)


def execute_ingest(payload: dict) -> list:
    """Worker: read up to ``max_chunks`` trace chunks into a fresh delta.

    Returns the delta accumulator's exact integer state plus the advanced
    offset; the daemon merges the delta into its master accumulator —
    mergeability is what makes running ingest in a disposable worker safe.
    """
    key = payload["key"]
    directive = _injected(key, payload["invocation"], _INGEST_KINDS)
    if directive is not None:
        import time

        time.sleep(_STALL_SLEEP_SECONDS)
    delta = WindowedTraceAccumulator(
        payload["window_ticks"], payload["ticks_per_second"]
    )
    offset = int(payload["offset"])
    for _ in range(int(payload["max_chunks"])):
        records, offset = read_trace_chunk(
            payload["path"], offset, int(payload["chunk_events"])
        )
        if records.shape[0] == 0:
            break
        delta.ingest(records)
    return [
        (
            key,
            {
                "state": delta.state_dict(),
                "offset": offset,
                "events": delta.events,
            },
        )
    ]


def execute_fit(payload: dict) -> list:
    """Worker: estimate (mean, I, p95) per station and fit a MAP(2) each."""
    key = payload["key"]
    if _injected(key, payload["invocation"], _FIT_KINDS) is not None:
        raise MapFitError(
            "injected fit divergence",
            target_mean=float("nan"),
            target_dispersion=float("nan"),
        )
    estimator_kwargs = payload.get("estimator", {})
    stations = {}
    for name, data in payload["stations"].items():
        utilizations = np.asarray(data["utilizations"], dtype=float)
        completions = np.asarray(data["completions"], dtype=float)
        period = float(data["period"])
        mean_service = float(data["mean_service"])
        dispersion = estimate_index_of_dispersion(
            utilizations, completions, period, **estimator_kwargs
        )
        p95 = estimate_service_percentile(utilizations, completions, period)
        fitted = fit_map2_from_measurements(
            mean_service, dispersion.index_of_dispersion, p95
        )
        stations[name] = {
            "mean_service": mean_service,
            "dispersion": float(dispersion.index_of_dispersion),
            "dispersion_converged": bool(dispersion.converged),
            "p95": float(p95),
            "map": map_to_payload(fitted.map),
        }
    return [(key, {"stations": stations})]


def execute_solve(payload: dict) -> list:
    """Worker: solve the closed MAP network what-if sweep from a fitted model."""
    key = payload["key"]
    directive = _injected(key, payload["invocation"], _SOLVE_KINDS)
    if directive is not None:
        import os

        os._exit(73)
    from repro.queueing.map_network import MapClosedNetworkSolver

    model = payload["model"]
    solver = MapClosedNetworkSolver(
        front_service=map_from_payload(model["stations"]["front"]["map"]),
        db_service=map_from_payload(model["stations"]["db"]["map"]),
        think_time=float(model["think_time"]),
    )
    rows = []
    for population in payload["populations"]:
        result = solver.solve(int(population))
        rows.append(
            {
                "population": int(population),
                "throughput": float(result.throughput),
                "response_time": float(result.response_time),
                "front_utilization": float(result.front_utilization),
                "db_utilization": float(result.db_utilization),
            }
        )
    return [(key, {"rows": rows})]
