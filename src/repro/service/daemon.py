"""The live what-if service daemon: ingest → fit → solve → serve, forever.

:class:`WhatIfService` turns the paper's offline pipeline into a long-lived
loop.  Each *cycle*:

1. **ingest** — every station's trace file is tailed in bounded chunks by a
   supervised worker; the worker returns an exact integer delta
   (:class:`~repro.service.streaming.WindowedTraceAccumulator` state) that
   the daemon merges into its master accumulator — bit-identical to having
   ingested the whole trace in one batch, RAM O(windows);
2. **fit** — once ``refit_windows`` new complete windows have accumulated
   on every station, a refit target is queued; a supervised worker
   estimates *(mean, I, p95)* over the sliding ``fit_horizon_windows``
   slice and fits a MAP(2) per station (the paper's Figure-2 + fitting
   pipeline);
3. **solve** — a supervised worker solves the closed MAP network what-if
   sweep over the configured populations;
4. **promote / degrade** — a fit+solve success is promoted to the durable
   last-known-good registry; any failure leaves the previous forecast in
   service with an explicit, growing ``staleness_windows`` and flips the
   health to ``degraded``.  Per-stage circuit breakers stop hammering a
   failing stage and probe it again after a (cycle-denominated,
   deterministic) backoff.

Determinism contract: given the same config, trace files and fault spec,
the sequence of checkpoints is **bit-identical** — including across a
SIGTERM drain + restart at any cycle boundary.  Everything the loop
decides on is integer state (ticks, windows, cycles, lifetime invocation
counters); wall-clock only influences *when* things happen, never *what*.
The only timestamp anywhere is the advisory ``heartbeat_unix`` in
``health.json``, which is excluded from the contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.pipeline import (
    BoundedWindowQueue,
    CircuitBreaker,
    StageOutcome,
    execute_fit,
    execute_ingest,
    execute_solve,
    run_stage,
)
from repro.service.registry import LastKnownGood, ModelRegistry
from repro.service.streaming import WindowedTraceAccumulator

__all__ = [
    "CheckpointMismatchError",
    "ServiceConfig",
    "WhatIfService",
]

_CHECKPOINT_NAME = "checkpoint.json"
_HEALTH_NAME = "health.json"

#: The two tiers of the paper's closed network (Figure 9).
_STATIONS = ("front", "db")
_STAGES = ("ingest", "fit", "solve")


class CheckpointMismatchError(RuntimeError):
    """A checkpoint written under a different config refuses to resume."""


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, indent=2)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceConfig:
    """Validated what-if service configuration (loaded from JSON).

    ``traces`` maps the two stations of the paper's network (``front``,
    ``db``) to their trace file paths.  All windowing is integer-tick:
    ``window_seconds * ticks_per_second`` must be a whole number of ticks.
    """

    name: str
    traces: dict
    think_time: float
    populations: tuple
    ticks_per_second: int = 1_000_000
    window_seconds: float = 1.0
    chunk_events: int = 65536
    max_chunks_per_cycle: int = 4
    refit_windows: int = 60
    fit_horizon_windows: int = 300
    min_fit_windows: int = 100
    estimator: dict = field(default_factory=dict)
    stage_timeout_seconds: float | None = 30.0
    stage_retries: int = 1
    breaker_threshold: int = 2
    breaker_backoff_cycles: int = 2
    breaker_backoff_cap_cycles: int = 8
    queue_maxlen: int = 8
    stall_cycles: int = 10
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if set(self.traces) != set(_STATIONS):
            raise ValueError(
                f"traces must name exactly the stations {_STATIONS}, "
                f"got {sorted(self.traces)}"
            )
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if not self.populations or any(int(p) < 1 for p in self.populations):
            raise ValueError("populations must be a non-empty list of ints >= 1")
        window_ticks = self.window_seconds * self.ticks_per_second
        if self.ticks_per_second < 1 or abs(window_ticks - round(window_ticks)) > 1e-9 or round(window_ticks) < 1:
            raise ValueError(
                "window_seconds * ticks_per_second must be a positive whole "
                "number of ticks"
            )
        for knob in (
            "chunk_events",
            "max_chunks_per_cycle",
            "refit_windows",
            "fit_horizon_windows",
            "min_fit_windows",
            "queue_maxlen",
            "checkpoint_every",
        ):
            if int(getattr(self, knob)) < 1:
                raise ValueError(f"{knob} must be >= 1")
        if self.min_fit_windows > self.fit_horizon_windows:
            raise ValueError("min_fit_windows must not exceed fit_horizon_windows")
        if self.stage_retries < 0 or self.stall_cycles < 1:
            raise ValueError("stage_retries must be >= 0 and stall_cycles >= 1")

    @property
    def window_ticks(self) -> int:
        return int(round(self.window_seconds * self.ticks_per_second))

    def config_hash(self) -> str:
        """Digest of the determinism-relevant configuration.

        A checkpoint resumed under a different hash would silently change
        window geometry or pipeline decisions mid-stream, so resume refuses
        it (``--reset`` starts over instead).
        """
        payload = {k: v for k, v in self.to_dict().items()}
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "traces": {name: str(path) for name, path in sorted(self.traces.items())},
            "think_time": self.think_time,
            "populations": [int(p) for p in self.populations],
            "ticks_per_second": self.ticks_per_second,
            "window_seconds": self.window_seconds,
            "chunk_events": self.chunk_events,
            "max_chunks_per_cycle": self.max_chunks_per_cycle,
            "refit_windows": self.refit_windows,
            "fit_horizon_windows": self.fit_horizon_windows,
            "min_fit_windows": self.min_fit_windows,
            "estimator": dict(self.estimator),
            "stage_timeout_seconds": self.stage_timeout_seconds,
            "stage_retries": self.stage_retries,
            "breaker_threshold": self.breaker_threshold,
            "breaker_backoff_cycles": self.breaker_backoff_cycles,
            "breaker_backoff_cap_cycles": self.breaker_backoff_cap_cycles,
            "queue_maxlen": self.queue_maxlen,
            "stall_cycles": self.stall_cycles,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, payload: dict, base_dir: Path | None = None) -> "ServiceConfig":
        if not isinstance(payload, dict):
            raise ValueError("service config must be a JSON object")
        unknown = set(payload) - {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown service config keys: {sorted(unknown)}")
        for required in ("name", "traces", "think_time", "populations"):
            if required not in payload:
                raise ValueError(f"service config is missing required key {required!r}")
        payload = dict(payload)
        traces = {
            str(name): str(path) for name, path in dict(payload["traces"]).items()
        }
        if base_dir is not None:
            traces = {
                name: str(path if os.path.isabs(path) else Path(base_dir) / path)
                for name, path in traces.items()
            }
        payload["traces"] = traces
        payload["populations"] = tuple(int(p) for p in payload["populations"])
        return cls(**payload)

    @classmethod
    def from_json(cls, path) -> "ServiceConfig":
        """Load and validate a config file; relative traces resolve next to it."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read service config {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise ValueError(f"service config {path} is not valid JSON: {error}") from error
        return cls.from_dict(payload, base_dir=path.parent)


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
@dataclass
class _StageStats:
    ok: int = 0
    failed: int = 0
    retried: int = 0

    def to_dict(self) -> dict:
        return {"ok": self.ok, "failed": self.failed, "retried": self.retried}

    @classmethod
    def from_dict(cls, payload: dict) -> "_StageStats":
        return cls(
            ok=int(payload["ok"]),
            failed=int(payload["failed"]),
            retried=int(payload["retried"]),
        )


class WhatIfService:
    """One service instance bound to a state directory.

    Construct with :meth:`open` — it warm-starts from the directory's
    checkpoint and last-known-good registry when present, cold-starts
    otherwise — then drive with :meth:`run` (or :meth:`run_cycle` in
    tests).  ``drain_requested`` may be flipped at any time (the CLI's
    SIGTERM handler does); the loop finishes the cycle in flight, writes a
    final checkpoint + health snapshot and returns.
    """

    def __init__(self, config: ServiceConfig, state_dir) -> None:
        self.config = config
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.registry = ModelRegistry(self.state_dir)
        self.drain_requested = False
        self.cycle = 0
        self.accumulators = {
            name: WindowedTraceAccumulator(config.window_ticks, config.ticks_per_second)
            for name in _STATIONS
        }
        self.offsets = {name: 0 for name in _STATIONS}
        self.invocations = {f"ingest/{name}": 0 for name in _STATIONS}
        self.invocations.update({"fit": 0, "solve": 0})
        self.breakers = {
            stage: CircuitBreaker(
                threshold=config.breaker_threshold,
                backoff_cycles=config.breaker_backoff_cycles,
                backoff_cap_cycles=config.breaker_backoff_cap_cycles,
            )
            for stage in _STAGES
        }
        self.stats = {stage: _StageStats() for stage in _STAGES}
        self.fit_queue = BoundedWindowQueue(config.queue_maxlen)
        self.fitted_upto = 0
        self.last_good: LastKnownGood | None = None
        self.refits_failed_since_good = 0
        self.no_new_cycles = 0
        self.events_total = 0
        self.last_errors: dict = {}

    # ------------------------------------------------------------------
    # Construction / resume
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        return self.state_dir / _CHECKPOINT_NAME

    @property
    def health_path(self) -> Path:
        return self.state_dir / _HEALTH_NAME

    @classmethod
    def open(cls, config: ServiceConfig, state_dir, reset: bool = False) -> "WhatIfService":
        """Warm-start from the state directory, or cold-start it.

        A checkpoint written under a different config hash refuses to
        resume (:class:`CheckpointMismatchError`) unless ``reset`` wipes
        the checkpoint, registry and health snapshot first.
        """
        service = cls(config, state_dir)
        if reset:
            for name in (_CHECKPOINT_NAME, _HEALTH_NAME, "registry.json"):
                (service.state_dir / name).unlink(missing_ok=True)
            for pattern in ("model-*.json", "forecast-*.json"):
                for path in service.state_dir.glob(pattern):
                    path.unlink(missing_ok=True)
            return service
        if service.checkpoint_path.exists():
            service._load_checkpoint()
            service.last_good = service.registry.load()
        return service

    def _load_checkpoint(self) -> None:
        payload = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        recorded = payload.get("config_hash")
        current = self.config.config_hash()
        if recorded != current:
            raise CheckpointMismatchError(
                f"checkpoint in {self.state_dir} was written under config hash "
                f"{recorded}, current config hashes to {current}; pass --reset "
                "to discard the old state"
            )
        self.cycle = int(payload["cycle"])
        self.offsets = {name: int(payload["offsets"][name]) for name in _STATIONS}
        self.accumulators = {
            name: WindowedTraceAccumulator.from_state(payload["accumulators"][name])
            for name in _STATIONS
        }
        for stage, breaker in self.breakers.items():
            breaker.load_state(payload["breakers"][stage])
        self.stats = {
            stage: _StageStats.from_dict(payload["stats"][stage]) for stage in _STAGES
        }
        self.fit_queue.load_state(payload["fit_queue"])
        self.invocations = {key: int(v) for key, v in payload["invocations"].items()}
        self.fitted_upto = int(payload["fitted_upto"])
        self.refits_failed_since_good = int(payload["refits_failed_since_good"])
        self.no_new_cycles = int(payload["no_new_cycles"])
        self.events_total = int(payload["events_total"])

    def checkpoint_payload(self) -> dict:
        """The exact-resume state (pure integers/strings — no clocks)."""
        return {
            "config_hash": self.config.config_hash(),
            "cycle": self.cycle,
            "offsets": dict(sorted(self.offsets.items())),
            "accumulators": {
                name: self.accumulators[name].state_dict() for name in _STATIONS
            },
            "breakers": {
                stage: self.breakers[stage].state_dict() for stage in _STAGES
            },
            "stats": {stage: self.stats[stage].to_dict() for stage in _STAGES},
            "fit_queue": self.fit_queue.state_dict(),
            "invocations": dict(sorted(self.invocations.items())),
            "fitted_upto": self.fitted_upto,
            "refits_failed_since_good": self.refits_failed_since_good,
            "no_new_cycles": self.no_new_cycles,
            "events_total": self.events_total,
        }

    def write_checkpoint(self) -> None:
        _atomic_write_text(self.checkpoint_path, _canonical(self.checkpoint_payload()))

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    @property
    def complete_windows(self) -> int:
        """Windows fully covered by *every* station's trace so far."""
        return min(acc.complete_windows for acc in self.accumulators.values())

    @property
    def staleness_windows(self) -> int | None:
        """How far the served model trails the data, in windows."""
        if self.last_good is None:
            return None
        return max(0, self.complete_windows - self.last_good.window_end)

    @property
    def forecast_stale(self) -> bool:
        """Whether the served forecast is degraded rather than fresh."""
        if self.last_good is None:
            return False
        if self.refits_failed_since_good > 0:
            return True
        staleness = self.staleness_windows
        return staleness is not None and staleness > 2 * self.config.refit_windows

    @property
    def serving(self) -> str:
        if self.last_good is None:
            return "none"
        return "last-known-good" if self.forecast_stale else "fresh"

    @property
    def status(self) -> str:
        """``healthy`` | ``degraded`` | ``stalled`` (worst condition wins)."""
        if (
            self.breakers["ingest"].state == "open"
            or self.no_new_cycles >= self.config.stall_cycles
        ):
            return "stalled"
        if (
            any(b.state != "closed" for b in self.breakers.values())
            or self.refits_failed_since_good > 0
            or self.forecast_stale
        ):
            return "degraded"
        return "healthy"

    def health_payload(self, heartbeat_unix: float) -> dict:
        return {
            "status": self.status,
            "serving": self.serving,
            "cycle": self.cycle,
            "heartbeat_unix": heartbeat_unix,
            "complete_windows": self.complete_windows,
            "events_total": self.events_total,
            "staleness_windows": self.staleness_windows,
            "refits_failed_since_good": self.refits_failed_since_good,
            "dropped_windows": self.fit_queue.dropped,
            "fit_backlog": len(self.fit_queue),
            "no_new_cycles": self.no_new_cycles,
            "last_good": None if self.last_good is None else self.last_good.to_meta(),
            "stages": {
                stage: {
                    **self.stats[stage].to_dict(),
                    "invocations": (
                        sum(
                            count
                            for key, count in self.invocations.items()
                            if key.startswith("ingest/")
                        )
                        if stage == "ingest"
                        else self.invocations[stage]
                    ),
                    "breaker": self.breakers[stage].state,
                    "breaker_opens": self.breakers[stage].opens,
                    "consecutive_failures": self.breakers[stage].consecutive_failures,
                    "last_error": self.last_errors.get(stage),
                }
                for stage in _STAGES
            },
        }

    def write_health(self) -> None:
        import time

        _atomic_write_text(
            self.health_path, _canonical(self.health_payload(time.time()))
        )

    # ------------------------------------------------------------------
    # The cycle
    # ------------------------------------------------------------------
    def run_cycle(self) -> str:
        """One ingest → (fit → solve) pass; returns the resulting status."""
        self.cycle += 1
        new_events = self._ingest_all()
        if new_events == 0:
            self.no_new_cycles += 1
        else:
            self.no_new_cycles = 0
        self._queue_refit_target()
        self._refit_and_solve()
        if self.cycle % self.config.checkpoint_every == 0:
            self.write_checkpoint()
        self.write_health()
        return self.status

    def run(self, cycles: int | None = None, idle_sleep: float = 0.2) -> str:
        """Drive cycles until the budget runs out or a drain is requested."""
        import time

        done = 0
        while not self.drain_requested and (cycles is None or done < cycles):
            before = self.events_total
            self.run_cycle()
            done += 1
            if cycles is None and self.events_total == before and idle_sleep > 0:
                time.sleep(idle_sleep)
        self.write_checkpoint()
        self.write_health()
        return self.status

    # ------------------------------------------------------------------
    def _ingest_all(self) -> int:
        """Supervised tail of every station's trace; returns new event count."""
        breaker = self.breakers["ingest"]
        if not breaker.allow(self.cycle):
            return 0
        new_events = 0
        ok = True
        message = None
        for name in _STATIONS:
            key = f"service/ingest/{name}"
            counter = f"ingest/{name}"
            self.invocations[counter] += 1
            outcome = run_stage(
                key,
                execute_ingest,
                {
                    "key": key,
                    "invocation": self.invocations[counter],
                    "path": self.config.traces[name],
                    "offset": self.offsets[name],
                    "chunk_events": self.config.chunk_events,
                    "max_chunks": self.config.max_chunks_per_cycle,
                    "window_ticks": self.config.window_ticks,
                    "ticks_per_second": self.config.ticks_per_second,
                },
                timeout=self.config.stage_timeout_seconds,
                retries=self.config.stage_retries,
            )
            self.stats["ingest"].retried += outcome.retries
            if not outcome.ok:
                ok = False
                message = f"{name}: [{outcome.kind}] {outcome.message}"
                break
            delta = WindowedTraceAccumulator.from_state(outcome.value["state"])
            self.accumulators[name].merge(delta)
            self.offsets[name] = int(outcome.value["offset"])
            new_events += int(outcome.value["events"])
        if ok:
            self.stats["ingest"].ok += 1
            breaker.record_success()
            self.last_errors.pop("ingest", None)
        else:
            self.stats["ingest"].failed += 1
            breaker.record_failure(self.cycle)
            self.last_errors["ingest"] = message
        self.events_total += new_events
        return new_events

    def _queue_refit_target(self) -> None:
        """Queue a refit once every station has ``refit_windows`` new windows."""
        complete = self.complete_windows
        if complete - self.fitted_upto < self.config.refit_windows:
            return
        if complete < self.config.min_fit_windows:
            return
        if self.fit_queue.items and self.fit_queue.items[-1] >= complete:
            return
        self.fit_queue.push(complete)

    def _refit_and_solve(self) -> None:
        if not self.fit_queue.items:
            return
        fit_breaker = self.breakers["fit"]
        solve_breaker = self.breakers["solve"]
        if not fit_breaker.allow(self.cycle):
            return
        window_end = int(self.fit_queue.pop())
        start = max(0, window_end - self.config.fit_horizon_windows)
        self.invocations["fit"] += 1
        fit_payload = {
            "key": "service/fit",
            "invocation": self.invocations["fit"],
            "estimator": dict(self.config.estimator),
            "stations": {},
        }
        try:
            for name in _STATIONS:
                snapshot = self.accumulators[name].snapshot(start, window_end)
                fit_payload["stations"][name] = {
                    "utilizations": snapshot.utilizations,
                    "completions": snapshot.completions,
                    "period": snapshot.period,
                    "mean_service": snapshot.mean_service_time(),
                }
        except ValueError as error:
            # A window slice the estimator cannot use (no completions, or
            # overlapping trace records) degrades exactly like a failed fit.
            self.stats["fit"].failed += 1
            fit_breaker.record_failure(self.cycle)
            self.refits_failed_since_good += 1
            self.last_errors["fit"] = f"[error] {error}"
            return
        outcome = run_stage(
            "service/fit",
            execute_fit,
            fit_payload,
            timeout=self.config.stage_timeout_seconds,
            retries=self.config.stage_retries,
        )
        self.stats["fit"].retried += outcome.retries
        if not outcome.ok:
            self.stats["fit"].failed += 1
            fit_breaker.record_failure(self.cycle)
            self.refits_failed_since_good += 1
            self.last_errors["fit"] = f"[{outcome.kind}] {outcome.message}"
            return
        self.stats["fit"].ok += 1
        fit_breaker.record_success()
        self.last_errors.pop("fit", None)
        model = {
            "stations": outcome.value["stations"],
            "think_time": float(self.config.think_time),
            "window_start": start,
            "window_end": window_end,
        }
        if not solve_breaker.allow(self.cycle):
            self.refits_failed_since_good += 1
            return
        self.invocations["solve"] += 1
        solve_outcome = run_stage(
            "service/solve",
            execute_solve,
            {
                "key": "service/solve",
                "invocation": self.invocations["solve"],
                "model": model,
                "populations": [int(p) for p in self.config.populations],
            },
            timeout=self.config.stage_timeout_seconds,
            retries=self.config.stage_retries,
        )
        self.stats["solve"].retried += solve_outcome.retries
        if not solve_outcome.ok:
            self.stats["solve"].failed += 1
            solve_breaker.record_failure(self.cycle)
            self.refits_failed_since_good += 1
            self.last_errors["solve"] = f"[{solve_outcome.kind}] {solve_outcome.message}"
            return
        self.stats["solve"].ok += 1
        solve_breaker.record_success()
        self.last_errors.pop("solve", None)
        forecast = {
            "model_cycle": self.cycle,
            "window_start": start,
            "window_end": window_end,
            "think_time": float(self.config.think_time),
            "rows": solve_outcome.value["rows"],
            "stations": {
                name: {
                    "mean_service": model["stations"][name]["mean_service"],
                    "dispersion": model["stations"][name]["dispersion"],
                    "p95": model["stations"][name]["p95"],
                }
                for name in _STATIONS
            },
        }
        good = LastKnownGood(
            cycle=self.cycle, window_end=window_end, model=model, forecast=forecast
        )
        self.registry.promote(good)
        self.last_good = good
        self.fitted_upto = window_end
        self.refits_failed_since_good = 0
