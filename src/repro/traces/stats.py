"""Statistical descriptors of sample sequences (service-time traces).

The estimators here operate on raw sequences of service times (or
inter-arrival times).  They implement the two definitions of the index of
dispersion given in the paper:

* eq. (1): ``I = SCV * (1 + 2 * sum_k rho_k)`` — estimated by truncating the
  autocorrelation sum at a finite maximum lag,
* eq. (2): ``I = lim_t Var(N_t) / E(N_t)`` — estimated by counting samples in
  growing time windows laid over the concatenated trace.

The busy-period based estimator that works on coarse monitoring data (the
pseudo-code of Figure 2) lives in :mod:`repro.core.dispersion`; the functions
below are its "full information" counterparts used for validation and for the
synthetic studies of Section 2.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scv",
    "autocorrelation",
    "autocorrelation_function",
    "index_of_dispersion_acf",
    "index_of_dispersion_counts",
    "index_of_dispersion_profile",
]


def _validate_samples(samples) -> np.ndarray:
    array = np.asarray(samples, dtype=float).reshape(-1)
    if array.size < 2:
        raise ValueError("at least two samples are required")
    return array


def scv(samples) -> float:
    """Squared coefficient of variation of a sample sequence."""
    array = _validate_samples(samples)
    mean = array.mean()
    if mean == 0:
        raise ValueError("samples have zero mean")
    return float(array.var() / mean ** 2)


def autocorrelation(samples, lag: int) -> float:
    """Biased (denominator ``n``) lag-``lag`` autocorrelation coefficient."""
    array = _validate_samples(samples)
    if lag < 1 or lag >= array.size:
        raise ValueError("lag must satisfy 1 <= lag < len(samples)")
    mean = array.mean()
    variance = array.var()
    if variance == 0:
        return 0.0
    centered = array - mean
    covariance = np.dot(centered[:-lag], centered[lag:]) / array.size
    return float(covariance / variance)


def autocorrelation_function(samples, max_lag: int) -> np.ndarray:
    """Autocorrelation coefficients for lags ``1..max_lag`` (FFT-based)."""
    array = _validate_samples(samples)
    if max_lag < 1 or max_lag >= array.size:
        raise ValueError("max_lag must satisfy 1 <= max_lag < len(samples)")
    centered = array - array.mean()
    n = array.size
    # Use the FFT to compute all autocovariances at once.
    size = 1
    while size < 2 * n:
        size *= 2
    transform = np.fft.rfft(centered, size)
    autocovariance = np.fft.irfft(transform * np.conj(transform), size)[: max_lag + 1]
    autocovariance /= n
    variance = autocovariance[0]
    if variance == 0:
        return np.zeros(max_lag)
    return (autocovariance[1 : max_lag + 1] / variance).astype(float)


def index_of_dispersion_acf(samples, max_lag: int | None = None) -> float:
    """Index of dispersion via eq. (1) with a truncated autocorrelation sum.

    ``I = SCV * (1 + 2 * sum_{k=1}^{max_lag} rho_k)``.  The default maximum
    lag is ``min(n // 4, 2000)`` which is large enough for the geometrically
    decaying correlation structures considered in the paper while keeping the
    estimator variance bounded.
    """
    array = _validate_samples(samples)
    if max_lag is None:
        max_lag = min(array.size // 4, 2000)
    max_lag = max(1, min(max_lag, array.size - 1))
    rho = autocorrelation_function(array, max_lag)
    return float(scv(array) * (1.0 + 2.0 * rho.sum()))


def _count_ratio(event_times: np.ndarray, total_time: float, window: float) -> float | None:
    """Variance-to-mean ratio of counts in overlapping windows of length ``window``.

    A window is started at every event epoch (the paper slides the window over
    all positions of the concatenated busy time); windows that would exceed
    the end of the trace are discarded.  Returns ``None`` when fewer than two
    windows fit.
    """
    starts = np.concatenate([[0.0], event_times[:-1]])
    valid = starts + window <= total_time
    if valid.sum() < 2:
        return None
    start_times = starts[valid]
    start_index = np.arange(event_times.size)[valid]
    end_index = np.searchsorted(event_times, start_times + window, side="right")
    counts = end_index - start_index
    mean_count = counts.mean()
    if mean_count == 0:
        return 0.0
    return float(counts.var() / mean_count)


def index_of_dispersion_counts(
    samples,
    window: float | None = None,
    min_windows: int = 100,
    tolerance: float = 0.2,
    growth: float = 1.5,
) -> float:
    """Index of dispersion via eq. (2): variance-to-mean ratio of counts.

    The sample sequence is interpreted as consecutive service (or
    inter-event) times; events are laid on a time line at the cumulative sums
    and counted in overlapping windows (one starting at every event epoch,
    exactly like the busy-period algorithm of Figure 2 slides its window over
    the concatenated busy periods).

    Parameters
    ----------
    samples:
        Sequence of non-negative durations.
    window:
        Fixed window length.  When omitted the window grows geometrically
        (factor ``growth``) until the variance-to-mean ratio stabilises
        within ``tolerance`` or until fewer than ``min_windows`` windows fit
        in the trace, which approximates the ``t -> infinity`` limit of
        eq. (2) as well as the trace length allows.
    min_windows:
        Minimum number of windows required for a meaningful variance
        estimate (the paper uses 100).
    tolerance:
        Relative-change convergence threshold for the adaptive window.
    growth:
        Geometric growth factor of the adaptive window.
    """
    array = _validate_samples(samples)
    if np.any(array < 0):
        raise ValueError("durations must be non-negative")
    total_time = float(array.sum())
    if total_time <= 0:
        raise ValueError("total duration must be positive")
    event_times = np.cumsum(array)
    if window is not None:
        if window <= 0:
            raise ValueError("window must be positive")
        ratio = _count_ratio(event_times, total_time, window)
        if ratio is None:
            raise ValueError("window too large: fewer than two windows fit in the trace")
        return ratio
    if growth <= 1.0:
        raise ValueError("growth must be > 1")
    mean_duration = total_time / array.size
    current = 10.0 * mean_duration
    # Never let the window exceed 10% of the trace: beyond that the windows
    # overlap so heavily that the variance estimate is dominated by a handful
    # of effectively independent observations.
    largest_allowed = total_time / 10.0
    if current >= largest_allowed:
        current = largest_allowed / 2.0
    ratio = _count_ratio(event_times, total_time, current)
    stable_steps = 0
    while current * growth <= largest_allowed:
        current *= growth
        new_ratio = _count_ratio(event_times, total_time, current)
        if new_ratio is None:
            break
        if ratio is not None and ratio > 0 and abs(1.0 - new_ratio / ratio) <= tolerance:
            stable_steps += 1
        else:
            stable_steps = 0
        ratio = new_ratio
        # Require two consecutive quiet steps before declaring convergence so
        # that slowly growing (very bursty) profiles are not cut off early.
        if stable_steps >= 2:
            return float(ratio)
    return float(ratio if ratio is not None else 0.0)


def index_of_dispersion_profile(
    samples, windows
) -> np.ndarray:
    """Variance-to-mean ratio of counts for each window length in ``windows``.

    Useful to inspect the convergence of eq. (2) towards its asymptotic value
    (and, through the aggregated-variance connection, to relate the index of
    dispersion to long-range dependence).
    """
    return np.array(
        [index_of_dispersion_counts(samples, window=w) for w in np.asarray(windows, dtype=float)]
    )
