"""Generators of i.i.d. and correlated sample sequences.

These are the workload sources of Section 2: all four traces of Figure 1 are
drawn from the *same* two-phase hyper-exponential distribution (mean 1,
SCV 3); only their ordering differs.  The :func:`figure1_traces` convenience
reproduces that construction end to end.
"""

from __future__ import annotations

import numpy as np

from repro.maps.map_process import MAP
from repro.maps.ph import PHDistribution, hyperexp_rates_from_moments
from repro.maps.sampling import sample_interarrival_times
from repro.traces.burstiness import calibrate_bursts_to_dispersion, shuffle_trace
from repro.traces.trace import Trace

__all__ = [
    "exponential_samples",
    "erlang_samples",
    "hyperexponential_samples",
    "ph_samples",
    "map_samples",
    "figure1_traces",
]


def _default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    return np.random.default_rng() if rng is None else rng


def exponential_samples(
    size: int, mean: float, rng: np.random.Generator | None = None
) -> np.ndarray:
    """I.i.d. exponential samples with the given mean."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    rng = _default_rng(rng)
    return rng.exponential(mean, size)


def erlang_samples(
    size: int, order: int, mean: float, rng: np.random.Generator | None = None
) -> np.ndarray:
    """I.i.d. Erlang-``order`` samples with the given mean (SCV = 1/order)."""
    if order < 1:
        raise ValueError("order must be >= 1")
    if mean <= 0:
        raise ValueError("mean must be positive")
    rng = _default_rng(rng)
    return rng.gamma(shape=order, scale=mean / order, size=size)


def hyperexponential_samples(
    size: int,
    mean: float,
    scv: float,
    p1: float | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """I.i.d. two-phase hyper-exponential samples matching mean and SCV."""
    rng = _default_rng(rng)
    p1, rate1, rate2 = hyperexp_rates_from_moments(mean, scv, p1)
    choices = rng.random(size) < p1
    fast = rng.exponential(1.0 / rate1, size)
    slow = rng.exponential(1.0 / rate2, size)
    return np.where(choices, fast, slow)


def ph_samples(
    ph: PHDistribution, size: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """I.i.d. samples from an arbitrary phase-type distribution."""
    return ph.sample(size, rng=_default_rng(rng))


def map_samples(
    map_process: MAP, size: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Correlated samples: consecutive inter-event times of a MAP."""
    return sample_interarrival_times(map_process, size, rng=_default_rng(rng))


def figure1_traces(
    size: int = 20_000,
    mean: float = 1.0,
    scv: float = 3.0,
    target_dispersion: tuple[float, ...] = (22.3, 92.6),
    rng: np.random.Generator | None = None,
) -> dict[str, Trace]:
    """Reproduce the four workloads of Figure 1 of the paper.

    All four traces share exactly the same multiset of hyper-exponential
    samples (mean 1, SCV 3 by default); they differ only in their ordering:

    * ``"a"`` — random order (index of dispersion close to the SCV),
    * ``"b"``, ``"c"`` — large samples aggregated into progressively fewer
      bursts, calibrated so that the measured index of dispersion approaches
      the intermediate targets reported in the paper (22.3 and 92.6),
    * ``"d"`` — all large samples concentrated in a single burst (maximum
      burstiness for the given marginal distribution).

    Returns a mapping from the panel label to a :class:`~repro.traces.Trace`.
    """
    rng = _default_rng(rng)
    base = hyperexponential_samples(size, mean, scv, rng=rng)
    traces: dict[str, Trace] = {}
    traces["a"] = Trace(shuffle_trace(base, rng=rng), label="fig1a-random")
    labels = ["b", "c"]
    for label, target in zip(labels, target_dispersion):
        reordered, bursts = calibrate_bursts_to_dispersion(base, target, rng=rng)
        traces[label] = Trace(reordered, label=f"fig1{label}-bursts{bursts}")
    single_burst, _ = calibrate_bursts_to_dispersion(base, None, num_bursts=1, rng=rng)
    traces["d"] = Trace(single_burst, label="fig1d-single-burst")
    return traces
