"""The :class:`Trace` container.

A :class:`Trace` bundles a sequence of durations (service times or
inter-arrival times) with lazily computed descriptors.  It is the common
currency between the workload generators, the burstiness estimators and the
simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.traces import stats as trace_stats

__all__ = ["Trace"]


@dataclass(frozen=True)
class Trace:
    """An ordered sequence of non-negative durations.

    Parameters
    ----------
    samples:
        Sequence of durations in seconds (service times of consecutive
        requests, or inter-arrival times of consecutive events).
    label:
        Optional human-readable label used in reports.
    """

    samples: np.ndarray
    label: str = field(default="trace")

    def __post_init__(self) -> None:
        array = np.asarray(self.samples, dtype=float).reshape(-1)
        if array.size < 2:
            raise ValueError("a trace needs at least two samples")
        if np.any(array < 0):
            raise ValueError("durations must be non-negative")
        object.__setattr__(self, "samples", array)

    # ------------------------------------------------------------------
    # Basic descriptors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.samples.size)

    @cached_property
    def mean(self) -> float:
        """Mean duration."""
        return float(self.samples.mean())

    @cached_property
    def variance(self) -> float:
        """Variance of the durations."""
        return float(self.samples.var())

    @cached_property
    def scv(self) -> float:
        """Squared coefficient of variation."""
        return trace_stats.scv(self.samples)

    @cached_property
    def total_time(self) -> float:
        """Sum of all durations (length of the concatenated busy time)."""
        return float(self.samples.sum())

    def percentile(self, q: float) -> float:
        """Empirical ``q``-quantile of the durations (``q`` in (0, 1))."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        return float(np.quantile(self.samples, q))

    # ------------------------------------------------------------------
    # Temporal structure
    # ------------------------------------------------------------------
    def autocorrelation(self, lag: int) -> float:
        """Lag-``lag`` autocorrelation coefficient."""
        return trace_stats.autocorrelation(self.samples, lag)

    def autocorrelation_function(self, max_lag: int) -> np.ndarray:
        """Autocorrelation coefficients for lags ``1..max_lag``."""
        return trace_stats.autocorrelation_function(self.samples, max_lag)

    @cached_property
    def index_of_dispersion(self) -> float:
        """Index of dispersion for counts (eq. (2), largest feasible window)."""
        return trace_stats.index_of_dispersion_counts(self.samples)

    def index_of_dispersion_acf(self, max_lag: int | None = None) -> float:
        """Index of dispersion via eq. (1) (truncated autocorrelation sum)."""
        return trace_stats.index_of_dispersion_acf(self.samples, max_lag)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def event_times(self) -> np.ndarray:
        """Cumulative sums: the event epochs of the concatenated trace."""
        return np.cumsum(self.samples)

    def head(self, count: int) -> "Trace":
        """A new trace containing the first ``count`` samples."""
        if count < 2:
            raise ValueError("count must be >= 2")
        return Trace(self.samples[:count], label=self.label)

    def summary(self) -> dict:
        """Dictionary of the descriptors used in the paper's tables."""
        return {
            "label": self.label,
            "count": len(self),
            "mean": self.mean,
            "scv": self.scv,
            "p95": self.percentile(0.95),
            "index_of_dispersion": self.index_of_dispersion,
        }
