"""Shaping the temporal structure (burstiness) of a sample sequence.

The key observation of Section 2 of the paper is that two traces with the
*same* marginal distribution can have dramatically different queueing
behaviour depending on whether large samples are spread uniformly or
aggregated in bursts.  The functions below reorder a sample sequence without
changing its multiset of values:

* :func:`shuffle_trace` — random order (destroys all autocorrelation),
* :func:`impose_burstiness` — aggregates the largest samples into a given
  number of contiguous bursts placed at random positions,
* :func:`calibrate_bursts_to_dispersion` — searches for the number of bursts
  that yields a requested index of dispersion.
"""

from __future__ import annotations

import numpy as np

from repro.traces.stats import index_of_dispersion_counts

__all__ = [
    "shuffle_trace",
    "impose_burstiness",
    "calibrate_bursts_to_dispersion",
]


def shuffle_trace(samples, rng: np.random.Generator | None = None) -> np.ndarray:
    """Return a random permutation of the samples (burstiness destroyed)."""
    if rng is None:
        rng = np.random.default_rng()
    array = np.asarray(samples, dtype=float).reshape(-1)
    return rng.permutation(array)


def impose_burstiness(
    samples,
    num_bursts: int,
    threshold_quantile: float = 0.85,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Reorder ``samples`` so that large values aggregate into bursts.

    The samples above the ``threshold_quantile`` are split into
    ``num_bursts`` contiguous groups which are inserted at random positions
    in a shuffled sequence of the remaining (small) samples.  With
    ``num_bursts == 1`` all large samples form a single burst — the maximum
    burstiness achievable for the given marginal distribution (Figure 1(d)).
    Increasing ``num_bursts`` disperses the bursts and lowers the index of
    dispersion towards the SCV of the marginal.

    The returned array is a permutation of the input: the marginal
    distribution (and therefore mean, SCV and every percentile) is preserved
    exactly.
    """
    if num_bursts < 1:
        raise ValueError("num_bursts must be >= 1")
    if not 0.0 < threshold_quantile < 1.0:
        raise ValueError("threshold_quantile must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    array = np.asarray(samples, dtype=float).reshape(-1)
    if array.size < 4:
        raise ValueError("at least four samples are required")
    threshold = np.quantile(array, threshold_quantile)
    large_mask = array > threshold
    large = array[large_mask]
    small = array[~large_mask]
    if large.size == 0 or small.size == 0:
        # Degenerate marginal (e.g. constant trace): nothing to aggregate.
        return rng.permutation(array)
    num_bursts = min(num_bursts, large.size)
    large = rng.permutation(large)
    small = rng.permutation(small)
    burst_groups = np.array_split(large, num_bursts)
    # Choose distinct insertion points in the small sequence, in increasing
    # order, so bursts do not merge unless num_bursts is close to len(small).
    insert_points = np.sort(rng.choice(small.size + 1, size=num_bursts, replace=True))
    pieces: list[np.ndarray] = []
    previous = 0
    for burst, point in zip(burst_groups, insert_points):
        pieces.append(small[previous:point])
        pieces.append(burst)
        previous = point
    pieces.append(small[previous:])
    return np.concatenate(pieces)


def calibrate_bursts_to_dispersion(
    samples,
    target_dispersion: float | None,
    num_bursts: int | None = None,
    threshold_quantile: float = 0.85,
    tolerance: float = 0.10,
    max_iterations: int = 30,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """Reorder ``samples`` so its measured index of dispersion hits a target.

    Parameters
    ----------
    samples:
        Sample sequence to reorder (its values are never altered).
    target_dispersion:
        Desired index of dispersion (measured with
        :func:`~repro.traces.stats.index_of_dispersion_counts`).  May be
        ``None`` when ``num_bursts`` is given explicitly.
    num_bursts:
        Skip the search and impose exactly this number of bursts.
    threshold_quantile, rng:
        Passed through to :func:`impose_burstiness`.
    tolerance:
        Relative tolerance on the achieved index of dispersion.
    max_iterations:
        Maximum number of bisection steps.

    Returns
    -------
    (reordered, bursts):
        The reordered sample array and the number of bursts used.

    Notes
    -----
    The index of dispersion is monotonically non-increasing in the number of
    bursts, so a bisection on ``log2(num_bursts)`` converges quickly.  The
    randomness of burst placement makes the measured value noisy; the
    bisection therefore stops as soon as the relative error falls below
    ``tolerance`` and otherwise returns the best value seen.
    """
    if rng is None:
        rng = np.random.default_rng()
    array = np.asarray(samples, dtype=float).reshape(-1)
    if num_bursts is not None:
        reordered = impose_burstiness(array, num_bursts, threshold_quantile, rng)
        return reordered, num_bursts
    if target_dispersion is None:
        raise ValueError("either target_dispersion or num_bursts must be given")
    if target_dispersion <= 0:
        raise ValueError("target_dispersion must be positive")

    large_count = int(np.ceil(array.size * (1.0 - threshold_quantile)))
    low, high = 1, max(2, large_count)

    def measure(bursts: int) -> tuple[np.ndarray, float]:
        candidate = impose_burstiness(array, bursts, threshold_quantile, rng)
        return candidate, index_of_dispersion_counts(candidate)

    best_trace, best_value = measure(low)
    best_bursts = low
    if abs(best_value - target_dispersion) / target_dispersion <= tolerance:
        return best_trace, best_bursts
    # The single-burst configuration is the maximum achievable dispersion.
    if best_value < target_dispersion:
        return best_trace, best_bursts

    for _ in range(max_iterations):
        if high - low <= 1:
            break
        middle = int(np.sqrt(low * high))  # geometric bisection
        middle = min(max(middle, low + 1), high - 1)
        candidate, value = measure(middle)
        if abs(value - target_dispersion) / target_dispersion < abs(
            best_value - target_dispersion
        ) / target_dispersion:
            best_trace, best_value, best_bursts = candidate, value, middle
        if abs(value - target_dispersion) / target_dispersion <= tolerance:
            return candidate, middle
        if value > target_dispersion:
            low = middle
        else:
            high = middle
    return best_trace, best_bursts
