"""Workload traces: generation, burstiness shaping and characterisation.

This subpackage provides everything needed to reproduce the synthetic
workloads of Section 2 of the paper (Figure 1 and Table 1):

* :mod:`~repro.traces.generators` — i.i.d. sample generators
  (hyper-exponential, exponential, Erlang, from an arbitrary PH or MAP),
* :mod:`~repro.traces.burstiness` — reordering of a sample sequence into
  bursty profiles with a controllable index of dispersion, preserving the
  marginal distribution exactly,
* :mod:`~repro.traces.stats` — estimators of SCV, autocorrelation and the
  index of dispersion from raw sample sequences,
* :mod:`~repro.traces.trace` — a :class:`Trace` container that bundles a
  sample sequence with its descriptors.
"""

from repro.traces.trace import Trace
from repro.traces.stats import (
    autocorrelation,
    autocorrelation_function,
    index_of_dispersion_acf,
    index_of_dispersion_counts,
    scv,
)
from repro.traces.generators import (
    exponential_samples,
    erlang_samples,
    hyperexponential_samples,
    ph_samples,
    map_samples,
    figure1_traces,
)
from repro.traces.burstiness import (
    impose_burstiness,
    shuffle_trace,
    calibrate_bursts_to_dispersion,
)
from repro.traces.longrange import aggregated_variance, hurst_aggregated_variance

__all__ = [
    "Trace",
    "autocorrelation",
    "autocorrelation_function",
    "index_of_dispersion_acf",
    "index_of_dispersion_counts",
    "scv",
    "exponential_samples",
    "erlang_samples",
    "hyperexponential_samples",
    "ph_samples",
    "map_samples",
    "figure1_traces",
    "impose_burstiness",
    "shuffle_trace",
    "calibrate_bursts_to_dispersion",
    "aggregated_variance",
    "hurst_aggregated_variance",
]
