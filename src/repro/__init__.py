"""repro — burstiness-aware capacity planning for multi-tier applications.

A faithful, self-contained reproduction of

    Ningfang Mi, Giuliano Casale, Ludmila Cherkasova, Evgenia Smirni.
    "Burstiness in Multi-Tier Applications: Symptoms, Causes, and New Models."
    ACM/IFIP/USENIX Middleware 2008.

The package is organised around the paper's methodology:

* :mod:`repro.core` — the contribution: estimate the index of dispersion and
  the 95th percentile of service times from coarse monitoring data, fit a
  MAP(2) per server, and assemble a burstiness-aware closed queueing network.
* :mod:`repro.maps` — phase-type distributions and Markovian Arrival
  Processes (moments, autocorrelations, index of dispersion, sampling).
* :mod:`repro.traces` — synthetic workload traces with controllable
  burstiness (Figure 1 / Table 1 of the paper).
* :mod:`repro.queueing` — analytical solvers: exact MVA (the baseline) and
  the exact CTMC solution of the closed MAP queueing network (the model).
* :mod:`repro.simulation` — discrete-event simulators (trace-driven FCFS
  queue, closed MAP network) used for validation.
* :mod:`repro.monitoring` — windowed collectors, busy-period extraction and
  utilisation-regression demand estimation (the `sar` / Diagnostics analogue).
* :mod:`repro.tpcw` — a simulated three-tier TPC-W testbed with
  contention-induced burstiness and bottleneck switch.
"""

from repro.core import (
    ServerMeasurement,
    ServerModel,
    MultiTierModel,
    build_server_model,
    build_multitier_model,
    estimate_index_of_dispersion,
    estimate_p95_service_time,
    fit_map2_from_measurements,
)
from repro.maps import MAP, PHDistribution
from repro.queueing import mva_closed_network, solve_map_closed_network
from repro.traces import Trace

__version__ = "1.0.0"

__all__ = [
    "ServerMeasurement",
    "ServerModel",
    "MultiTierModel",
    "build_server_model",
    "build_multitier_model",
    "estimate_index_of_dispersion",
    "estimate_p95_service_time",
    "fit_map2_from_measurements",
    "MAP",
    "PHDistribution",
    "mva_closed_network",
    "solve_map_closed_network",
    "Trace",
    "quickstart_model",
    "__version__",
]


def quickstart_model(seed: int | None = 0, duration: float = 600.0):
    """Build the paper's model end to end on a short simulated experiment.

    Runs the simulated TPC-W testbed under the browsing mix, collects coarse
    monitoring data, and returns the fitted
    :class:`~repro.core.model_builder.MultiTierModel`.  Intended as a
    one-line demonstration of the whole pipeline; see ``examples/`` for
    complete scenarios.
    """
    from repro.tpcw import BROWSING_MIX, build_model_from_testbed, collect_monitoring_dataset

    dataset = collect_monitoring_dataset(
        BROWSING_MIX, num_ebs=50, think_time=0.5, duration=duration, seed=seed
    )
    return build_model_from_testbed(dataset, model_think_time=0.5)
