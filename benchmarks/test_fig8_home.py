"""Figure 8: Home-transaction in-system requests across time.

Paper observation: the Home transaction (29 % of the browsing mix) also
contributes to the extreme spikes of the database queue — during the largest
bursts its in-system count rises together with the Best Seller count — while
under the shopping and ordering mixes it stays low at all times.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table


def test_fig8_home_transaction_contribution(benchmark, timeseries_runs):
    runs = benchmark.pedantic(lambda: timeseries_runs, rounds=1, iterations=1)
    rows = []
    for mix_name in ("browsing", "shopping", "ordering"):
        run = runs[mix_name]
        home = run.tracked_in_system["Home"]
        queue = run.database.queue_length[: len(home)]
        bursts = queue > 20.0
        home_during_bursts = float(home[bursts].mean()) if np.any(bursts) else float("nan")
        rows.append(
            (
                mix_name,
                f"{run.config.mix.probability('Home') * 100:.0f}%",
                f"{home.mean():.1f}",
                f"{home.max():.1f}",
                "n/a" if np.isnan(home_during_bursts) else f"{home_during_bursts:.1f}",
            )
        )
    print()
    print("Figure 8 — Home requests in system (100 EBs, 300 s window)")
    print(
        format_table(
            ["mix", "mix share", "mean in-system", "peak in-system", "mean during DB bursts"],
            rows,
        )
    )

    browsing = runs["browsing"]
    home = browsing.tracked_in_system["Home"]
    queue = browsing.database.queue_length[: len(home)]
    bursts = queue > 20.0
    assert np.any(bursts)
    # During browsing-mix bursts the Home population is clearly elevated
    # compared to quiet periods.
    assert home[bursts].mean() > 2.0 * max(home[~bursts].mean(), 0.5)
    # Home peaks stay modest under the other mixes.
    assert runs["shopping"].tracked_in_system["Home"].max() < home.max()
    assert runs["ordering"].tracked_in_system["Home"].max() < 10.0
