"""Figure 1: four traces with identical marginals but different burstiness.

The paper draws 20,000 samples from a hyper-exponential distribution with
mean 1 and SCV 3 and imposes four burstiness profiles whose indices of
dispersion are 3.0, 22.3, 92.6 and 488.7.  This benchmark regenerates the
four traces and reports their measured descriptors.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table
from repro.traces import figure1_traces


def test_figure1_trace_profiles(benchmark):
    traces = benchmark.pedantic(
        lambda: figure1_traces(size=20_000, rng=np.random.default_rng(42)),
        rounds=1,
        iterations=1,
    )
    paper_values = {"a": 3.0, "b": 22.3, "c": 92.6, "d": 488.7}
    rows = []
    for label in ("a", "b", "c", "d"):
        trace = traces[label]
        rows.append(
            (
                f"Fig.1({label})",
                f"{trace.mean:.3f}",
                f"{trace.scv:.2f}",
                f"{trace.index_of_dispersion:.1f}",
                f"{paper_values[label]:.1f}",
            )
        )
    print()
    print("Figure 1 — burstiness profiles (identical hyper-exponential marginal)")
    print(format_table(["trace", "mean", "SCV", "I (measured)", "I (paper)"], rows))

    # Shape checks: identical marginals, strictly increasing burstiness,
    # trace (a) close to its SCV, trace (d) in the hundreds.
    reference = np.sort(traces["a"].samples)
    for label in ("b", "c", "d"):
        assert np.allclose(np.sort(traces[label].samples), reference)
    dispersions = [traces[k].index_of_dispersion for k in ("a", "b", "c", "d")]
    assert all(x < y for x, y in zip(dispersions, dispersions[1:]))
    assert dispersions[0] < 10.0
    assert dispersions[3] > 150.0
    benchmark.extra_info["dispersions"] = dispersions
