"""Figure 7: Best Seller in-system requests versus the overall DB queue.

Paper observation: although Best Seller requests are only 11 % of the
browsing mix, the spikes of the database queue are dominated by this
transaction type — their in-system count tracks the overall queue during the
bursts.  Under the shopping and ordering mixes no such behaviour exists.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table


def test_fig7_best_seller_dominates_bursts(benchmark, timeseries_runs):
    runs = benchmark.pedantic(lambda: timeseries_runs, rounds=1, iterations=1)
    rows = []
    share_during_bursts = {}
    for mix_name in ("browsing", "shopping", "ordering"):
        run = runs[mix_name]
        queue = run.database.queue_length
        best_sellers = run.tracked_in_system["Best Sellers"]
        length = min(len(queue), len(best_sellers))
        queue, best_sellers = queue[:length], best_sellers[:length]
        bursts = queue > 20.0
        if np.any(bursts):
            share = float(np.mean(best_sellers[bursts] / np.maximum(queue[bursts], 1e-9)))
        else:
            share = float("nan")
        share_during_bursts[mix_name] = share
        correlation = (
            float(np.corrcoef(queue, best_sellers)[0, 1]) if queue.std() > 0 and best_sellers.std() > 0 else 0.0
        )
        rows.append(
            (
                mix_name,
                f"{run.config.mix.probability('Best Sellers') * 100:.0f}%",
                f"{best_sellers.mean():.1f}",
                f"{best_sellers.max():.1f}",
                "n/a" if np.isnan(share) else f"{100 * share:.0f}%",
                f"{correlation:.2f}",
            )
        )
    print()
    print("Figure 7 — Best Seller requests in system vs overall DB queue (100 EBs)")
    print(
        format_table(
            ["mix", "mix share", "mean in-system", "peak in-system", "share of queue bursts", "corr(queue, BS)"],
            rows,
        )
    )

    browsing = runs["browsing"]
    queue = browsing.database.queue_length
    best_sellers = browsing.tracked_in_system["Best Sellers"][: len(queue)]
    # Best Sellers dominate the queue during bursts despite being ~11% of the mix.
    assert share_during_bursts["browsing"] > 0.4
    # Their in-system count is strongly correlated with the overall queue.
    assert np.corrcoef(queue, best_sellers)[0, 1] > 0.7
    # Peaks far above what their mix share alone would explain.
    assert best_sellers.max() > 0.3 * queue.max()
    # Nothing comparable for the ordering mix.
    assert runs["ordering"].tracked_in_system["Best Sellers"].max() < 5.0
