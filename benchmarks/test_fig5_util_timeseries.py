"""Figure 5: per-second CPU utilisation of the two servers across time.

The paper shows 300 s of 1-second `sar` samples for the three mixes at
100 EBs: under the browsing mix there are periods where the database
utilisation rises well above the front-server utilisation (the bottleneck
switch); under the shopping and ordering mixes the front server dominates at
all times.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table


def switch_fraction(run, margin=0.15):
    """Fraction of seconds where the DB is utilised ``margin`` above the front."""
    front = run.front.utilization
    database = run.database.utilization
    return float(np.mean(database > front + margin))


def test_fig5_utilization_timeseries(benchmark, timeseries_runs):
    runs = benchmark.pedantic(lambda: timeseries_runs, rounds=1, iterations=1)
    rows = []
    for mix_name in ("browsing", "shopping", "ordering"):
        run = runs[mix_name]
        rows.append(
            (
                mix_name,
                f"{100 * run.front.mean_utilization:.1f}%",
                f"{100 * run.database.mean_utilization:.1f}%",
                f"{100 * run.database.utilization.max():.1f}%",
                f"{100 * switch_fraction(run):.1f}%",
                len(run.contention_episodes),
            )
        )
    print()
    print("Figure 5 — 1-second utilisation series at 100 EBs (300 s window)")
    print(
        format_table(
            ["mix", "front mean", "DB mean", "DB peak", "time DB >> front", "episodes"],
            rows,
        )
    )
    # Example excerpt of the browsing series around the first contention episode.
    browsing = runs["browsing"]
    if browsing.contention_episodes:
        start = int(max(0, browsing.contention_episodes[0][0] - 5))
        excerpt = slice(start, start + 20)
        print()
        print("browsing mix, excerpt around the first contention episode (1 s samples):")
        print("front:", np.round(browsing.front.utilization[excerpt], 2))
        print("db:   ", np.round(browsing.database.utilization[excerpt], 2))

    # Shape checks: a clear switch for browsing, (almost) none for the others.
    assert switch_fraction(runs["browsing"]) > 0.10
    assert switch_fraction(runs["shopping"]) < 0.10
    assert switch_fraction(runs["ordering"]) < 0.02
    assert switch_fraction(runs["browsing"]) > 3 * switch_fraction(runs["shopping"])
    # The database peaks at (or near) saturation during browsing episodes.
    assert runs["browsing"].database.utilization.max() > 0.95
