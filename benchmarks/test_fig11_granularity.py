"""Figure 11: effect of the estimation think time (Z_estim) on model accuracy.

The paper estimates the MAP(2)s from monitoring traces collected at
Z_estim = 0.5 s and Z_estim = 7 s (both with 50 EBs) and evaluates the
resulting models at Z_qn = 0.5 s for 25, 75 and 150 EBs, showing that the
measurement granularity materially changes the prediction error.

Substrate note (see EXPERIMENTS.md): on the real testbed the coarser
Z_estim = 7 s traces gave the better model; on the simulated testbed the
relationship is reversed because the contention cascade is load-dependent and
invisible at very low load.  The headline of the figure — the quality of the
estimation run determines the model error, and the better choice brings the
error down to a few per cent — is preserved.
"""

from __future__ import annotations

from benchmarks.conftest import format_table

POPULATIONS = [25, 75, 150]


def prediction_errors(model, measured):
    errors = {}
    for population, value in measured.items():
        predicted = model.predict(population).throughput
        errors[population] = abs(predicted - value) / value
    return errors


def test_fig11_measurement_granularity(benchmark, eb_sweeps, granularity_models):
    measured = {
        point.num_ebs: point.throughput
        for point in eb_sweeps["browsing"]
        if point.num_ebs in POPULATIONS
    }
    errors = benchmark.pedantic(
        lambda: {z: prediction_errors(model, measured) for z, model in granularity_models.items()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for population in POPULATIONS:
        rows.append(
            (
                population,
                f"{measured[population]:.1f}",
                f"{granularity_models[0.5].predict(population).throughput:.1f}"
                f" ({100 * errors[0.5][population]:.1f}%)",
                f"{granularity_models[7.0].predict(population).throughput:.1f}"
                f" ({100 * errors[7.0][population]:.1f}%)",
            )
        )
    print()
    print("Figure 11 — browsing mix, model accuracy vs estimation granularity")
    print(
        format_table(
            ["EBs", "measured", "Model-Z0.5 (error)", "Model-Z7 (error)"], rows
        )
    )
    for z_estim, model in granularity_models.items():
        print(
            f"Z_estim={z_estim}: I_front={model.front.index_of_dispersion:.1f} "
            f"I_db={model.database.index_of_dispersion:.1f} "
            f"mean_db={1000 * model.database.mean_service_time:.2f} ms"
        )

    average_errors = {z: sum(e.values()) / len(e) for z, e in errors.items()}
    best = min(average_errors.values())
    worst = max(average_errors.values())
    # The better estimation granularity brings the average error below ~12 %...
    assert best < 0.12
    # ...and granularity genuinely matters (the two models differ noticeably).
    assert worst > best + 0.02
    benchmark.extra_info["average_errors"] = {str(k): float(v) for k, v in average_errors.items()}
