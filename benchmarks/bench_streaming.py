"""Streaming-ingestion scale benchmark: multi-GB-class traces, O(windows) RAM.

Synthesizes a large bursty single-server trace (10M arrivals by default —
160 MB on disk), then streams it through the service's chunked reader into
a :class:`~repro.service.streaming.WindowedTraceAccumulator`, reporting
throughput (events/s) and the peak RSS of the streaming pass.  The RAM
claim is the point: the accumulator holds one int64 pair per *window*, so
peak memory is a function of the trace's time horizon, not its event count.

With ``--verify`` the benchmark additionally loads the whole trace in one
batch and asserts the chunk-merged state equals the batch state **exactly**
(integer equality, then bit-identical float snapshots) — the mergeability
contract at production scale.  Verification is optional because the batch
load is exactly the O(events) allocation the streaming path avoids.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_streaming.py                # 10M events
    PYTHONPATH=src python benchmarks/bench_streaming.py --events 1000000 --verify
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.service import (
    RECORD_BYTES,
    TraceChunkReader,
    WindowedTraceAccumulator,
    read_trace_chunk,
    synthesize_service_trace,
)


def _peak_rss_bytes() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return peak * 1024 if sys.platform != "darwin" else peak


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=10_000_000)
    parser.add_argument("--chunk-events", type=int, default=262_144)
    parser.add_argument(
        "--window-seconds", type=float, default=1.0, help="estimation window length"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also batch-load the whole trace and assert merged == batch exactly",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="reuse/create the trace at this path instead of a temp file",
    )
    args = parser.parse_args(argv)

    ticks = 1_000_000
    window_ticks = int(round(args.window_seconds * ticks))
    tmpdir = None
    if args.trace is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="bench-streaming-")
        trace = Path(tmpdir.name) / "trace.bin"
    else:
        trace = Path(args.trace)

    if not trace.exists() or trace.stat().st_size != args.events * RECORD_BYTES:
        started = time.perf_counter()
        synthesize_service_trace(
            trace,
            events=args.events,
            mean_service=0.02,
            scv=4.0,
            utilization=0.5,
            ticks_per_second=ticks,
            seed=42,
            chunk_events=args.chunk_events,
        )
        synth_seconds = time.perf_counter() - started
    else:
        synth_seconds = 0.0
    trace_bytes = trace.stat().st_size

    accumulator = WindowedTraceAccumulator(window_ticks, ticks)
    reader = TraceChunkReader(trace, chunk_events=args.chunk_events)
    started = time.perf_counter()
    for chunk in reader:
        accumulator.ingest(chunk)
    stream_seconds = time.perf_counter() - started
    stream_peak_rss = _peak_rss_bytes()

    snapshot = accumulator.snapshot(0, accumulator.complete_windows)
    report = {
        "events": accumulator.events,
        "trace_bytes": trace_bytes,
        "windows": accumulator.num_windows,
        "complete_windows": accumulator.complete_windows,
        "synthesize_seconds": round(synth_seconds, 3),
        "stream_seconds": round(stream_seconds, 3),
        "events_per_second": round(accumulator.events / stream_seconds),
        "stream_peak_rss_mb": round(stream_peak_rss / 2**20, 1),
        "accumulator_state_mb": round(
            accumulator.num_windows * 16 / 2**20, 3
        ),
        "mean_utilization": round(float(snapshot.utilizations.mean()), 4),
        "mean_service_time": round(snapshot.mean_service_time(), 6),
    }

    if args.verify:
        batch = WindowedTraceAccumulator(window_ticks, ticks)
        offset = 0
        # Batch semantics, bounded allocation: one pass, one accumulator,
        # huge chunks (the point is a different partition, not RAM).
        while True:
            records, offset = read_trace_chunk(trace, offset, 4 * args.chunk_events + 7)
            if records.shape[0] == 0:
                break
            batch.ingest(records)
        identical = batch.state_dict() == accumulator.state_dict()
        other = batch.snapshot(0, batch.complete_windows)
        report["verify_merged_equals_batch"] = bool(
            identical
            and np.array_equal(snapshot.utilizations, other.utilizations)
            and np.array_equal(snapshot.completions, other.completions)
        )

    print(json.dumps(report, indent=2))
    if tmpdir is not None:
        tmpdir.cleanup()
    if args.verify and not report["verify_merged_equals_batch"]:
        print("FAIL: chunk-merged state differs from batch state", file=sys.stderr)
        return 1
    budget_mb = 600 + accumulator.num_windows * 16 / 2**20
    if report["stream_peak_rss_mb"] > budget_mb:
        print(
            f"FAIL: streaming peak RSS {report['stream_peak_rss_mb']} MB exceeds "
            f"the O(windows) budget of {budget_mb:.0f} MB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
