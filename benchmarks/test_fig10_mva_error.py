"""Figure 10: MVA model predictions versus measured throughput.

The MVA model is parameterised only with the mean service demands obtained
from utilisation measurements (here: the 50-EB reference run of each sweep,
via the utilisation law).  Paper observation: the prediction is accurate for
the shopping and ordering mixes but overestimates the browsing-mix throughput
badly (up to ~36 % in the paper) because MVA cannot represent the bottleneck
switch caused by bursty database service.
"""

from __future__ import annotations

from benchmarks.conftest import EB_VALUES, MODEL_THINK_TIME, format_table
from repro.queueing import mva_closed_network
from repro.tpcw.experiment import measurement_from_series


def mva_prediction_errors(sweep):
    """Return (per-population errors, predictions, measured) for one sweep."""
    reference = next(point for point in sweep if point.num_ebs == 50)
    front_demand = measurement_from_series(reference.result.front).mean_service_time
    db_demand = measurement_from_series(reference.result.database).mean_service_time
    mva = mva_closed_network([front_demand, db_demand], MODEL_THINK_TIME, max(EB_VALUES))
    errors, predictions, measured = {}, {}, {}
    for point in sweep:
        predicted = mva.throughput_at(point.num_ebs)
        predictions[point.num_ebs] = predicted
        measured[point.num_ebs] = point.throughput
        errors[point.num_ebs] = abs(predicted - point.throughput) / point.throughput
    return errors, predictions, measured, (front_demand, db_demand)


def test_fig10_mva_prediction_error(benchmark, eb_sweeps):
    results = benchmark.pedantic(
        lambda: {name: mva_prediction_errors(sweep) for name, sweep in eb_sweeps.items()},
        rounds=1,
        iterations=1,
    )
    print()
    max_errors = {}
    for mix_name in ("browsing", "shopping", "ordering"):
        errors, predictions, measured, demands = results[mix_name]
        rows = [
            (
                ebs,
                f"{measured[ebs]:.1f}",
                f"{predictions[ebs]:.1f}",
                f"{100 * errors[ebs]:.1f}%",
            )
            for ebs in EB_VALUES
        ]
        print(
            f"Figure 10 — {mix_name} mix "
            f"(MVA demands: front {1000 * demands[0]:.2f} ms, DB {1000 * demands[1]:.2f} ms)"
        )
        print(format_table(["EBs", "measured TPUT", "MVA TPUT", "error"], rows))
        print()
        max_errors[mix_name] = max(errors.values())

    print("maximum relative error per mix:", {k: f"{100 * v:.1f}%" for k, v in max_errors.items()})

    # Shape: MVA is accurate without bottleneck switch, poor with it.
    assert max_errors["browsing"] > 0.15
    assert max_errors["shopping"] < 0.12
    assert max_errors["ordering"] < 0.12
    assert max_errors["browsing"] > 2.0 * max_errors["ordering"]
    # At saturation the MVA model overestimates the browsing throughput.
    browsing_errors, browsing_pred, browsing_meas, _ = results["browsing"]
    assert browsing_pred[150] > browsing_meas[150]
    benchmark.extra_info["max_errors"] = {k: float(v) for k, v in max_errors.items()}
