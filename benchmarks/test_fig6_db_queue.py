"""Figure 6: database queue length versus database utilisation across time.

Paper observation: under the browsing mix the database queue alternates
between near-empty periods and bursts of up to ~90 queued requests (out of
100 EBs), and these bursts coincide with the periods of peak database
utilisation; under the shopping and ordering mixes the queue stays small.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table


def burst_alignment(run, queue_threshold=20.0, utilization_threshold=0.9):
    """Fraction of high-queue seconds whose DB utilisation is (near) saturated."""
    queue = run.database.queue_length
    utilization = run.database.utilization
    high_queue = queue > queue_threshold
    if not np.any(high_queue):
        return float("nan")
    return float(np.mean(utilization[high_queue] > utilization_threshold))


def test_fig6_database_queue_bursts(benchmark, timeseries_runs):
    runs = benchmark.pedantic(lambda: timeseries_runs, rounds=1, iterations=1)
    rows = []
    for mix_name in ("browsing", "shopping", "ordering"):
        run = runs[mix_name]
        queue = run.database.queue_length
        rows.append(
            (
                mix_name,
                f"{queue.mean():.1f}",
                f"{np.quantile(queue, 0.5):.1f}",
                f"{queue.max():.1f}",
                f"{100 * float(np.mean(queue > 20.0)):.1f}%",
                f"{burst_alignment(run):.2f}" if not np.isnan(burst_alignment(run)) else "n/a",
            )
        )
    print()
    print("Figure 6 — database queue length at 100 EBs (1 s averages, 300 s window)")
    print(
        format_table(
            ["mix", "mean queue", "median", "peak", "time queue>20", "P(DB sat | queue>20)"],
            rows,
        )
    )

    browsing_queue = runs["browsing"].database.queue_length
    # Bursts: near-empty median but peaks of the order of the EB population.
    assert np.quantile(browsing_queue, 0.5) < 10.0
    assert browsing_queue.max() > 40.0
    # Queue bursts coincide with database saturation.
    assert burst_alignment(runs["browsing"]) > 0.8
    # The other mixes never build comparable backlogs.
    assert runs["shopping"].database.queue_length.max() < 0.5 * browsing_queue.max()
    assert runs["ordering"].database.queue_length.max() < 10.0
