"""Figure 12: the burstiness-aware MAP model versus MVA versus measurements.

This is the headline result of the paper: parameterising each server with
(mean service time, index of dispersion, 95th percentile) and solving the
closed MAP queueing network tracks the measured throughput closely for all
three mixes — including the browsing mix with its bottleneck switch, where
MVA fails — and reports the per-server indices of dispersion.
"""

from __future__ import annotations

from benchmarks.conftest import EB_VALUES, format_table


def model_errors(model, sweep):
    measured = {point.num_ebs: point.throughput for point in sweep}
    mva = model.mva_throughput(EB_VALUES)
    map_based = model.predict_throughput(EB_VALUES)
    rows = []
    mva_errors, map_errors = [], []
    for index, ebs in enumerate(EB_VALUES):
        mva_error = abs(mva[index] - measured[ebs]) / measured[ebs]
        map_error = abs(map_based[index] - measured[ebs]) / measured[ebs]
        mva_errors.append(mva_error)
        map_errors.append(map_error)
        rows.append(
            (
                ebs,
                f"{measured[ebs]:.1f}",
                f"{mva[index]:.1f} ({100 * mva_error:.1f}%)",
                f"{map_based[index]:.1f} ({100 * map_error:.1f}%)",
            )
        )
    return rows, mva_errors, map_errors


def test_fig12_map_model_accuracy(benchmark, eb_sweeps, fitted_models):
    results = benchmark.pedantic(
        lambda: {
            name: model_errors(fitted_models[name], eb_sweeps[name]) for name in fitted_models
        },
        rounds=1,
        iterations=1,
    )
    print()
    summary = {}
    for mix_name in ("browsing", "shopping", "ordering"):
        model = fitted_models[mix_name]
        rows, mva_errors, map_errors = results[mix_name]
        print(
            f"Figure 12 — {mix_name} mix  "
            f"(I_front={model.front.index_of_dispersion:.1f}, "
            f"I_db={model.database.index_of_dispersion:.1f})"
        )
        print(format_table(["EBs", "measured", "MVA (error)", "MAP model (error)"], rows))
        print()
        summary[mix_name] = {
            "max_mva_error": max(mva_errors),
            "max_map_error": max(map_errors),
            "mean_map_error": sum(map_errors) / len(map_errors),
        }
    print("summary:", {k: {m: f"{100 * v:.1f}%" for m, v in s.items()} for k, s in summary.items()})

    browsing = summary["browsing"]
    # The MAP model fixes the browsing mix: large MVA error, small MAP error.
    assert browsing["max_mva_error"] > 0.15
    assert browsing["mean_map_error"] < 0.12
    assert browsing["max_map_error"] < 0.6 * browsing["max_mva_error"]
    # The MAP model never does (meaningfully) worse than MVA on the other mixes.
    for mix_name in ("shopping", "ordering"):
        assert summary[mix_name]["mean_map_error"] < 0.12
    # The browsing database has by far the largest index of dispersion, and
    # every database is burstier than its front server (as in the paper's
    # reported I values: 40/308, 2/286, 3/98).
    dispersions = {
        name: (model.front.index_of_dispersion, model.database.index_of_dispersion)
        for name, model in fitted_models.items()
    }
    print("indices of dispersion (front, db):", dispersions)
    assert dispersions["browsing"][1] > dispersions["ordering"][1]
    for front_i, db_i in dispersions.values():
        assert db_i > front_i
    benchmark.extra_info["summary"] = {
        k: {m: float(v) for m, v in s.items()} for k, s in summary.items()
    }
