"""Table 1: response times of the M/Trace/1 queue for the Figure-1 traces.

The paper feeds each of the four traces to a single FCFS server with Poisson
arrivals at 50 % and 80 % utilisation and reports the mean and the 95th
percentile of the response time, showing monotone (and dramatic) degradation
with the index of dispersion.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table
from repro.simulation import simulate_mtrace1
from repro.traces import figure1_traces

PAPER_ROWS = {
    # label: (mean@0.5, p95@0.5, mean@0.8, p95@0.8, I)
    "a": (3.02, 14.42, 8.70, 33.26, 3.0),
    "b": (11.00, 83.35, 43.35, 211.76, 22.3),
    "c": (26.69, 252.18, 72.31, 485.42, 92.6),
    "d": (120.49, 1132.40, 150.32, 1346.53, 488.7),
}


def run_table1():
    traces = figure1_traces(size=20_000, rng=np.random.default_rng(42))
    results = {}
    for label, trace in traces.items():
        low = simulate_mtrace1(trace.samples, 0.5, rng=np.random.default_rng(1))
        high = simulate_mtrace1(trace.samples, 0.8, rng=np.random.default_rng(2))
        results[label] = (
            low.mean_response_time,
            low.response_time_percentile(0.95),
            high.mean_response_time,
            high.response_time_percentile(0.95),
            trace.index_of_dispersion,
        )
    return results


def test_table1_mtrace1_response_times(benchmark):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = []
    for label in ("a", "b", "c", "d"):
        measured = results[label]
        paper = PAPER_ROWS[label]
        rows.append(
            (
                f"Fig.1({label})",
                f"{measured[0]:.2f}",
                f"{measured[1]:.2f}",
                f"{measured[2]:.2f}",
                f"{measured[3]:.2f}",
                f"{measured[4]:.1f}",
                f"{paper[0]:.2f}/{paper[2]:.2f}",
            )
        )
    print()
    print("Table 1 — M/Trace/1 response times (measured vs paper means)")
    print(
        format_table(
            ["workload", "mean@0.5", "p95@0.5", "mean@0.8", "p95@0.8", "I", "paper mean@0.5/0.8"],
            rows,
        )
    )

    # Shape checks: every column increases monotonically with the trace's
    # burstiness, and the most bursty trace is at least an order of magnitude
    # slower than the random-order trace (the paper reports ~40x).
    for column in range(4):
        values = [results[label][column] for label in ("a", "b", "c", "d")]
        assert all(x < y for x, y in zip(values, values[1:]))
    assert results["d"][0] > 20 * results["a"][0]
    assert results["d"][1] > 20 * results["a"][1]
    # At higher utilisation everything is slower.
    for label in ("a", "b", "c", "d"):
        assert results[label][2] > results[label][0]
