"""Ablation: what the pieces of the MAP(2) fitting procedure contribute.

The paper's procedure keeps candidates within ±20 % of the measured index of
dispersion and picks the one whose 95th percentile matches best.  This
ablation compares, on a service process with known descriptors, the queueing
predictions obtained with (a) the full procedure, (b) no p95 tie-break, and
(c) a mean-only (exponential / MVA-equivalent) model — quantifying how much
each ingredient matters for the closed-network throughput prediction.
"""

from __future__ import annotations

from benchmarks.conftest import format_table
from repro.core.map_fitting import fit_map2_from_measurements
from repro.maps import map2_exponential, map2_from_moments_and_decay
from repro.queueing import solve_map_closed_network

POPULATION = 80
THINK_TIME = 0.5
FRONT = map2_exponential(0.004)


def run_ablation():
    true_db = map2_from_moments_and_decay(0.0035, 6.0, 0.995)
    truth = solve_map_closed_network(FRONT, true_db, THINK_TIME, POPULATION).throughput
    target_i = true_db.index_of_dispersion()
    target_p95 = true_db.interarrival_percentile(0.95)

    full_fit = fit_map2_from_measurements(0.0035, target_i, target_p95)
    no_p95_fit = fit_map2_from_measurements(0.0035, target_i, p95=None)
    mean_only = map2_exponential(0.0035)

    variants = {
        "true MAP(2) (reference)": true_db,
        "fit: mean + I + p95 (paper)": full_fit.map,
        "fit: mean + I only": no_p95_fit.map,
        "mean only (exponential)": mean_only,
    }
    rows = []
    errors = {}
    for label, service in variants.items():
        throughput = solve_map_closed_network(FRONT, service, THINK_TIME, POPULATION).throughput
        error = abs(throughput - truth) / truth
        errors[label] = error
        rows.append((label, f"{service.index_of_dispersion():.1f}", f"{throughput:.1f}", f"{100 * error:.1f}%"))
    return truth, rows, errors


def test_ablation_fitting_ingredients(benchmark):
    truth, rows, errors = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(f"Ablation — MAP(2) fitting ingredients (reference throughput {truth:.1f} tx/s)")
    print(format_table(["service model", "I", "predicted TPUT", "error vs reference"], rows))

    # The reference reproduces itself exactly.
    assert errors["true MAP(2) (reference)"] < 1e-9
    # The paper's fit tracks the reference closely...
    assert errors["fit: mean + I + p95 (paper)"] < 0.15
    # ...and is much closer than the mean-only (MVA-equivalent) model.
    assert errors["mean only (exponential)"] > 2.0 * errors["fit: mean + I + p95 (paper)"]
    # Dropping the p95 tie-break must not make things better than the full fit
    # by more than noise (it usually makes them worse).
    assert errors["fit: mean + I only"] >= errors["fit: mean + I + p95 (paper)"] - 0.05
