"""Shared, session-scoped experiment fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  All of the
underlying experiments are declarative engine scenarios executed by the
shared cache-backed runner, so they are run at most once per *cache
lifetime* (not once per session): the testbed series behind the time-series
figures and the monitoring datasets behind the fitted models are persisted
as npz artifact side-files in the result cache, and a warm harness run
re-simulates nothing.

* ``eb_sweeps`` — the measured throughput / utilisation curves of Figure 4
  (also consumed by the model-accuracy benchmarks of Figures 10 and 12),
* ``timeseries_runs`` — the 100-EB runs whose per-second series appear in
  Figures 5–8 (the ``fig5`` scenario),
* ``estimation_datasets`` — the Z_estim = 0.5 s monitoring runs (the
  ``estimation`` scenario),
* ``fitted_models`` — the models parameterised from those datasets
  (Figure 12),
* ``granularity_models`` — the Figure-11 models estimated at Z_estim =
  0.5 s and 7 s (the ``granularity_fine`` / ``granularity_coarse``
  scenarios).

Experiment scale: the paper runs each experiment for 3 hours on real
hardware; the simulated experiments below use a few hundred simulated seconds
per configuration, which keeps the whole harness in the ~10 minute range
while leaving the shapes of all results intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentRunner, default_cache_dir, get_scenario
from repro.experiments.cli import format_table  # noqa: F401  (shared table renderer)
from repro.experiments.registry import MODEL_THINK_TIME  # noqa: F401  (re-exported)
from repro.experiments.registry import EB_VALUES as REGISTRY_EB_VALUES
from repro.tpcw import build_model_from_testbed

# The EB sweep axis of the fig4 scenario — the registry is the single source
# of truth for the paper's experiment constants.
EB_VALUES = list(REGISTRY_EB_VALUES)


@pytest.fixture(scope="session")
def experiment_runner():
    """Engine runner shared by the harness: parallel fan-out, artifact cache.

    A second harness run on unchanged sources (or a run after a mid-session
    kill) is served from npz side-files instead of re-simulating;
    ``REPRO_EXPERIMENTS_CACHE`` relocates the store.  Source-change
    invalidation needs no harness-side keying any more: every run manifest
    embeds the solver/simulator code fingerprint
    (:func:`repro.experiments.cache.source_fingerprint`), so touching any
    kernel turns the old entries into logged misses and ``cache gc`` prunes
    them.
    """
    return ExperimentRunner(cache_dir=default_cache_dir(), keep_artifacts=True)


@pytest.fixture(scope="session")
def eb_sweeps(experiment_runner):
    """Measured EB sweeps for the three mixes (Figure 4 / 10 / 12 input).

    Driven through the experiment engine: the ``fig4`` scenario spec defines
    the populations, durations and the shared (common-random-numbers) seed.
    """
    return experiment_runner.run(get_scenario("fig4")).sweep_points_by_mix()


@pytest.fixture(scope="session")
def timeseries_runs(experiment_runner):
    """100-EB runs with per-second monitoring series (Figures 5-8)."""
    return experiment_runner.run(get_scenario("fig5")).testbed_runs_by_mix()


@pytest.fixture(scope="session")
def estimation_datasets(experiment_runner):
    """Monitoring datasets used to parameterise the models (Z_estim = 0.5 s)."""
    return experiment_runner.run(get_scenario("estimation")).testbed_runs_by_mix()


@pytest.fixture(scope="session")
def fitted_models(estimation_datasets):
    """Burstiness-aware MultiTierModel per mix (Figure 12 input)."""
    return {
        name: build_model_from_testbed(dataset, model_think_time=MODEL_THINK_TIME)
        for name, dataset in estimation_datasets.items()
    }


@pytest.fixture(scope="session")
def granularity_models(experiment_runner):
    """Browsing-mix models estimated at Z_estim = 0.5 s and 7 s (Figure 11)."""
    models = {}
    for z_estim, scenario in ((0.5, "granularity_fine"), (7.0, "granularity_coarse")):
        runs = experiment_runner.run(get_scenario(scenario)).testbed_runs_by_mix()
        models[z_estim] = build_model_from_testbed(
            runs["browsing"], model_think_time=MODEL_THINK_TIME
        )
    return models


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2008)
