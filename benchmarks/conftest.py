"""Shared, session-scoped experiment fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The underlying
testbed experiments are expensive, so they are run once per session here and
shared across benchmark modules:

* ``eb_sweeps`` — the measured throughput / utilisation curves of Figure 4
  (also consumed by the model-accuracy benchmarks of Figures 10 and 12),
* ``timeseries_runs`` — the 100-EB runs whose per-second series appear in
  Figures 5–8,
* ``fitted_models`` — the models parameterised from monitoring data
  (Figures 11 and 12).

Experiment scale: the paper runs each experiment for 3 hours on real
hardware; the simulated experiments below use a few hundred simulated seconds
per configuration, which keeps the whole harness in the ~10 minute range
while leaving the shapes of all results intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tpcw import (
    BROWSING_MIX,
    ORDERING_MIX,
    SHOPPING_MIX,
    TestbedConfig,
    TPCWTestbed,
    build_model_from_testbed,
    collect_monitoring_dataset,
    run_eb_sweep,
)

EB_VALUES = [25, 50, 75, 100, 125, 150]
SWEEP_DURATION = 400.0
SWEEP_WARMUP = 40.0
SWEEP_SEED = 7
MODEL_THINK_TIME = 0.5


def format_table(headers, rows) -> str:
    """Plain-text table used by the benchmarks to print paper-style results."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(headers)]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@pytest.fixture(scope="session")
def eb_sweeps():
    """Measured EB sweeps for the three mixes (Figure 4 / 10 / 12 input)."""
    return {
        mix.name: run_eb_sweep(
            mix, EB_VALUES, duration=SWEEP_DURATION, warmup=SWEEP_WARMUP, seed=SWEEP_SEED
        )
        for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
    }


@pytest.fixture(scope="session")
def timeseries_runs():
    """100-EB runs with per-second monitoring series (Figures 5-8)."""
    runs = {}
    for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX):
        config = TestbedConfig(
            mix=mix, num_ebs=100, think_time=0.5, duration=300.0, warmup=30.0, seed=17
        )
        runs[mix.name] = TPCWTestbed(config).run()
    return runs


@pytest.fixture(scope="session")
def estimation_datasets():
    """Monitoring datasets used to parameterise the models (Z_estim = 0.5 s)."""
    return {
        mix.name: collect_monitoring_dataset(
            mix, num_ebs=50, think_time=0.5, duration=800.0, warmup=60.0, seed=21
        )
        for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
    }


@pytest.fixture(scope="session")
def fitted_models(estimation_datasets):
    """Burstiness-aware MultiTierModel per mix (Figure 12 input)."""
    return {
        name: build_model_from_testbed(dataset, model_think_time=MODEL_THINK_TIME)
        for name, dataset in estimation_datasets.items()
    }


@pytest.fixture(scope="session")
def granularity_models():
    """Browsing-mix models estimated at Z_estim = 0.5 s and 7 s (Figure 11)."""
    models = {}
    for z_estim, duration in ((0.5, 800.0), (7.0, 2500.0)):
        dataset = collect_monitoring_dataset(
            BROWSING_MIX, num_ebs=50, think_time=z_estim, duration=duration, warmup=60.0, seed=23
        )
        models[z_estim] = build_model_from_testbed(dataset, model_think_time=MODEL_THINK_TIME)
    return models


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2008)
