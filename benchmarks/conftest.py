"""Shared, session-scoped experiment fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The underlying
testbed experiments are expensive, so they are run once per session here and
shared across benchmark modules:

* ``eb_sweeps`` — the measured throughput / utilisation curves of Figure 4
  (also consumed by the model-accuracy benchmarks of Figures 10 and 12),
* ``timeseries_runs`` — the 100-EB runs whose per-second series appear in
  Figures 5–8,
* ``fitted_models`` — the models parameterised from monitoring data
  (Figures 11 and 12).

Experiment scale: the paper runs each experiment for 3 hours on real
hardware; the simulated experiments below use a few hundred simulated seconds
per configuration, which keeps the whole harness in the ~10 minute range
while leaving the shapes of all results intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    get_scenario,
    sweep_points_by_mix,
    testbed_runs_by_mix,
)
from repro.experiments.cli import format_table  # noqa: F401  (shared table renderer)
from repro.experiments.registry import MODEL_THINK_TIME  # noqa: F401  (re-exported)
from repro.experiments.registry import EB_VALUES as REGISTRY_EB_VALUES
from repro.tpcw import (
    BROWSING_MIX,
    ORDERING_MIX,
    SHOPPING_MIX,
    build_model_from_testbed,
    collect_monitoring_dataset,
)

# The EB sweep axis of the fig4 scenario — the registry is the single source
# of truth for the paper's experiment constants.
EB_VALUES = list(REGISTRY_EB_VALUES)


@pytest.fixture(scope="session")
def experiment_runner():
    """Engine runner shared by the harness (parallel fan-out, rich artifacts)."""
    return ExperimentRunner(keep_artifacts=True)


@pytest.fixture(scope="session")
def eb_sweeps(experiment_runner):
    """Measured EB sweeps for the three mixes (Figure 4 / 10 / 12 input).

    Driven through the experiment engine: the ``fig4`` scenario spec defines
    the populations, durations and the shared (common-random-numbers) seed.
    """
    return sweep_points_by_mix(experiment_runner.run(get_scenario("fig4")))


@pytest.fixture(scope="session")
def timeseries_runs(experiment_runner):
    """100-EB runs with per-second monitoring series (Figures 5-8)."""
    return testbed_runs_by_mix(experiment_runner.run(get_scenario("fig5")))


@pytest.fixture(scope="session")
def estimation_datasets():
    """Monitoring datasets used to parameterise the models (Z_estim = 0.5 s)."""
    return {
        mix.name: collect_monitoring_dataset(
            mix, num_ebs=50, think_time=0.5, duration=800.0, warmup=60.0, seed=21
        )
        for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
    }


@pytest.fixture(scope="session")
def fitted_models(estimation_datasets):
    """Burstiness-aware MultiTierModel per mix (Figure 12 input)."""
    return {
        name: build_model_from_testbed(dataset, model_think_time=MODEL_THINK_TIME)
        for name, dataset in estimation_datasets.items()
    }


@pytest.fixture(scope="session")
def granularity_models():
    """Browsing-mix models estimated at Z_estim = 0.5 s and 7 s (Figure 11)."""
    models = {}
    for z_estim, duration in ((0.5, 800.0), (7.0, 2500.0)):
        dataset = collect_monitoring_dataset(
            BROWSING_MIX, num_ebs=50, think_time=z_estim, duration=duration, warmup=60.0, seed=23
        )
        models[z_estim] = build_model_from_testbed(dataset, model_think_time=MODEL_THINK_TIME)
    return models


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2008)
