"""Microbenchmark of the closed MAP network pipeline → ``BENCH_solver.json``.

Tracks the performance trajectory of the repository's hottest paths:

* ``generator_build`` — vectorised Kronecker assembly vs the retained naive
  per-state builder at N=100 with MAP(2) service at both stations,
* ``exact_solve`` — full ``MapClosedNetworkSolver.solve`` wall time at a
  ladder of populations (the N=500 entry is the headline number),
* ``sweep`` — warm-started ``solve_sweep`` over the same ladder,
* ``simulation`` — event-loop rate of the chunked-RNG simulator.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_solver.py            # full grid
    PYTHONPATH=src python benchmarks/bench_solver.py --quick    # CI smoke

The output document is committed as ``BENCH_solver.json`` so the numbers are
versioned alongside the code that produced them; CI re-runs the quick grid on
every push and uploads the fresh document as an artifact (tracked, not
gated).  Refresh the committed file after touching the solver or simulator
hot paths.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import time


def _median_time(callable_, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - started)
    timings.sort()
    return timings[len(timings) // 2]


def bench_generator_build(population: int, repeats: int) -> dict:
    """Naive vs Kronecker generator assembly at MAP(2) x MAP(2)."""
    from repro.maps.map2 import map2_from_moments_and_decay
    from repro.queueing.map_network import MapClosedNetworkSolver

    front = map2_from_moments_and_decay(0.02, 4.0, 0.5)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    solver = MapClosedNetworkSolver(front, db, 0.5)
    naive_seconds = _median_time(lambda: solver._build_generator_naive(population), repeats)
    kron_seconds = _median_time(lambda: solver._build_generator(population), repeats)
    return {
        "population": population,
        "num_states": solver.state_space(population).num_states,
        "naive_seconds": naive_seconds,
        "kron_seconds": kron_seconds,
        "speedup": naive_seconds / kron_seconds,
    }


def bench_exact_solve(populations: list[int]) -> list[dict]:
    """Full solve wall time per population (fresh solver each time)."""
    from repro.maps.map2 import map2_from_moments_and_decay
    from repro.queueing.map_network import MapClosedNetworkSolver

    front = map2_from_moments_and_decay(0.02, 4.0, 0.5)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    rows = []
    for population in populations:
        solver = MapClosedNetworkSolver(front, db, 0.5)
        started = time.perf_counter()
        result = solver.solve(population)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "population": population,
                "num_states": result.num_states,
                "seconds": elapsed,
                "throughput": result.throughput,
            }
        )
    return rows


def bench_sweep(populations: list[int]) -> dict:
    """Warm-started sweep over the whole ladder with one solver instance."""
    from repro.maps.map2 import map2_from_moments_and_decay
    from repro.queueing.map_network import MapClosedNetworkSolver

    front = map2_from_moments_and_decay(0.02, 4.0, 0.5)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    solver = MapClosedNetworkSolver(front, db, 0.5)
    started = time.perf_counter()
    results = solver.solve_sweep(populations)
    elapsed = time.perf_counter() - started
    return {
        "populations": populations,
        "seconds": elapsed,
        "throughputs": [result.throughput for result in results],
    }


def bench_simulation(horizon: float) -> dict:
    """Chunked-RNG event-loop rate on the bursty Figure-9-style network."""
    import numpy as np

    from repro.maps.map2 import map2_exponential, map2_from_moments_and_decay
    from repro.simulation.closed_network import simulate_closed_map_network

    front = map2_exponential(0.02)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    started = time.perf_counter()
    result = simulate_closed_map_network(
        front, db, 0.5, 50, horizon=horizon, warmup=horizon * 0.05,
        rng=np.random.default_rng(1),
    )
    elapsed = time.perf_counter() - started
    return {
        "horizon": horizon,
        "seconds": elapsed,
        "completed": result.completed,
        "completions_per_second": result.completed / elapsed,
    }


def run_benchmarks(quick: bool) -> dict:
    import numpy
    import scipy

    solve_populations = [50, 100] if quick else [100, 200, 500]
    sweep_populations = [25, 50, 75, 100] if quick else [100, 200, 300, 400, 500]
    sim_horizon = 2000.0 if quick else 20000.0
    build_repeats = 3 if quick else 5
    return {
        "benchmark": "closed MAP network solver + simulator",
        "generated_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "results": {
            "generator_build": bench_generator_build(100, build_repeats),
            "exact_solve": bench_exact_solve(solve_populations),
            "sweep": bench_sweep(sweep_populations),
            "simulation": bench_simulation(sim_horizon),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_solver.json", help="output document path"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small grid for the CI perf-smoke step"
    )
    args = parser.parse_args(argv)

    document = run_benchmarks(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    build = document["results"]["generator_build"]
    print(
        f"generator build N={build['population']}: "
        f"naive {build['naive_seconds']:.3f}s vs kron {build['kron_seconds']:.4f}s "
        f"({build['speedup']:.1f}x)"
    )
    for row in document["results"]["exact_solve"]:
        print(
            f"exact solve N={row['population']}: {row['seconds']:.2f}s "
            f"({row['num_states']} states)"
        )
    sweep = document["results"]["sweep"]
    print(f"sweep {sweep['populations']}: {sweep['seconds']:.2f}s")
    sim = document["results"]["simulation"]
    print(f"simulation: {sim['completions_per_second']:,.0f} completions/s")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
