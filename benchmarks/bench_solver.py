"""Microbenchmark of the closed MAP network pipeline → ``BENCH_solver.json``.

Tracks the performance trajectory of the repository's hottest paths:

* ``generator_build`` — vectorised Kronecker assembly vs the retained naive
  per-state builder at N=100 with MAP(2) service at both stations,
* ``exact_solve`` — full ``MapClosedNetworkSolver.solve`` wall time at a
  ladder of populations.  Every point runs in a *fresh subprocess* so its
  peak RSS is an honest per-population measurement; each row records the
  solver tier that produced it and, next to the measured footprint, the
  bytes the materialized tier would have allocated for the same system
  (CSR + balance CSC + ILU fill).  The full grid reaches N=1000 and N=1500
  (~2M and ~4.5M states), which only the matrix-free tier can touch without
  gigabytes of fill,
* ``sweep`` — warm-started ``solve_sweep`` over the materialized ladder,
* ``simulation`` — event-loop rate of the chunked-RNG simulator,
* ``sim_loop`` — scalar event loop vs the vectorized batched-replication
  kernel on the bursty Figure-9 network (the fig4-scale sweep workload):
  per-cell seconds and aggregate events/second for replication counts from
  16 up.  The scalar side runs every replication serially; at R=1024 its
  ladder rung would cost minutes, so rungs marked ``scalar_extrapolated``
  price the scalar kernel from its measured per-replication seconds at the
  same horizon (replications are independent runs — the scalar cost is
  exactly linear in R).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_solver.py            # full grid
    PYTHONPATH=src python benchmarks/bench_solver.py --quick    # CI smoke

The output document is committed as ``BENCH_solver.json`` and is an
**append-only trajectory**: ``latest`` holds the full result of the newest
run, and ``history`` accumulates one compact entry per run, keyed by git SHA
and UTC date, so the perf trend across PRs stays visible in one file.

``--quick`` doubles as the CI regression gate: the fresh numbers are
compared against the newest history entry *from a comparable environment*
(same python major.minor and machine — wall-clock gates across machine
classes only produce noise) on the overlapping metrics (``exact_solve``
populations present in both, their Krylov iteration counts — a
deterministic canary for preconditioner regressions that wall-clock noise
would hide — and the ``generator_build`` Kronecker time), and
the script exits non-zero when any of them regressed by more than
``--gate-threshold`` (default 25%).  A gate-failing run is *not* appended to
the trajectory — a rerun would otherwise compare the regression against
itself and wave it through.  ``--no-gate`` records without gating.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time

#: Populations of the ``exact_solve`` ladder.  The quick grid stays small
#: enough for CI; the full grid crosses the materialized/matrix-free tier
#: boundary (~600k states, between N=500 and N=1000).
QUICK_SOLVE_POPULATIONS = [50, 100]
FULL_SOLVE_POPULATIONS = [100, 200, 500, 1000, 1500]

#: ``sim_loop`` ladder: {key: (replications, horizon, measure scalar side)}.
#: Keys appearing in both the quick and full grids must describe identical
#: work, since the regression gate compares entries across grids (like the
#: ``exact_solve`` overlap at N=100).  Rungs with ``measure_scalar=False``
#: extrapolate the scalar cost linearly from the measured per-replication
#: seconds of the largest measured rung at the same horizon.
SIM_LOOP_POINTS = {
    "R16": (16, 2000.0, True),
    "R64": (64, 250.0, True),
    "R256": (256, 2000.0, False),
    "R1024": (1024, 2000.0, False),
}
QUICK_SIM_LOOP = ["R64"]
FULL_SIM_LOOP = ["R16", "R64", "R256", "R1024"]

#: Relative slowdown versus the previous trajectory entry that fails the
#: ``--quick`` gate.
GATE_THRESHOLD = 0.25


def _median_time(callable_, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - started)
    timings.sort()
    return timings[len(timings) // 2]


def bench_generator_build(population: int, repeats: int) -> dict:
    """Naive vs Kronecker generator assembly at MAP(2) x MAP(2)."""
    from repro.maps.map2 import map2_from_moments_and_decay
    from repro.queueing.map_network import MapClosedNetworkSolver

    front = map2_from_moments_and_decay(0.02, 4.0, 0.5)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    solver = MapClosedNetworkSolver(front, db, 0.5)
    naive_seconds = _median_time(lambda: solver._build_generator_naive(population), repeats)
    kron_seconds = _median_time(lambda: solver._build_generator(population), repeats)
    return {
        "population": population,
        "num_states": solver.state_space(population).num_states,
        "naive_seconds": naive_seconds,
        "kron_seconds": kron_seconds,
        "speedup": naive_seconds / kron_seconds,
    }


#: Executed with ``python -c`` in a fresh interpreter per exact-solve point:
#: the reported ``ru_maxrss`` is then the high-water mark of that single
#: solve, not of every ladder rung before it.
_SOLVE_SNIPPET = """\
import json, resource, sys, time
from repro.maps.map2 import map2_from_moments_and_decay
from repro.queueing.map_network import MapClosedNetworkSolver

population = int(sys.argv[1])
front = map2_from_moments_and_decay(0.02, 4.0, 0.5)
db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
solver = MapClosedNetworkSolver(front, db, 0.5)
started = time.perf_counter()
result = solver.solve(population)
elapsed = time.perf_counter() - started
# Read the high-water mark *before* building the accounting operator, so the
# recorded footprint is the solve's alone.  ru_maxrss is KiB on Linux but
# bytes on macOS (same quirk as repro.experiments.solvers._peak_rss_mb).
peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
peak_rss_mb = peak / (1024.0 * 1024.0) if sys.platform == "darwin" else peak / 1024.0
operator = solver._assembler.operator(solver.state_space(population))
print(json.dumps({
    "population": population,
    "num_states": result.num_states,
    "seconds": elapsed,
    "throughput": result.throughput,
    "solver_tier": result.solver_tier,
    "krylov_iterations": result.krylov_iterations,
    "precond_setup_seconds": result.precond_setup_seconds,
    "peak_rss_mb": peak_rss_mb,
    "materialized_estimate_mb": operator.materialized_bytes_estimate() / 1e6,
}))
"""


def bench_exact_solve(populations: list[int]) -> list[dict]:
    """Full solve wall time per population, one fresh subprocess each."""
    rows = []
    for population in populations:
        completed = subprocess.run(
            [sys.executable, "-c", _SOLVE_SNIPPET, str(population)],
            capture_output=True,
            text=True,
            env=os.environ.copy(),
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"exact-solve subprocess for N={population} failed "
                f"(exit {completed.returncode}):\n{completed.stderr}"
            )
        rows.append(json.loads(completed.stdout.splitlines()[-1]))
    return rows


def bench_sweep(populations: list[int]) -> dict:
    """Warm-started sweep over the whole ladder with one solver instance."""
    from repro.maps.map2 import map2_from_moments_and_decay
    from repro.queueing.map_network import MapClosedNetworkSolver

    front = map2_from_moments_and_decay(0.02, 4.0, 0.5)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    solver = MapClosedNetworkSolver(front, db, 0.5)
    started = time.perf_counter()
    results = solver.solve_sweep(populations)
    elapsed = time.perf_counter() - started
    return {
        "populations": populations,
        "seconds": elapsed,
        "throughputs": [result.throughput for result in results],
    }


def bench_simulation(horizon: float) -> dict:
    """Chunked-RNG event-loop rate on the bursty Figure-9-style network."""
    import numpy as np

    from repro.maps.map2 import map2_exponential, map2_from_moments_and_decay
    from repro.simulation.closed_network import simulate_closed_map_network

    front = map2_exponential(0.02)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    started = time.perf_counter()
    result = simulate_closed_map_network(
        front, db, 0.5, 50, horizon=horizon, warmup=horizon * 0.05,
        rng=np.random.default_rng(1),
    )
    elapsed = time.perf_counter() - started
    return {
        "horizon": horizon,
        "seconds": elapsed,
        "completed": result.completed,
        "completions_per_second": result.completed / elapsed,
    }


def bench_sim_loop(point_keys: list[str]) -> list[dict]:
    """Scalar vs batched simulation kernel on the Figure-9 network.

    One row per replication-count rung.  Both kernels simulate the *same
    work* (R replications, same horizon/warmup, per-replication seeds), so
    the speedup is a pure kernel comparison; ``events`` counts jump-chain
    transitions, the common work measure of the two kernels.
    """
    import numpy as np

    from repro.maps.map2 import map2_exponential, map2_from_moments_and_decay
    from repro.simulation.batched import simulate_closed_map_network_batch
    from repro.simulation.closed_network import simulate_closed_map_network

    front = map2_exponential(0.02)
    db = map2_from_moments_and_decay(0.015, 4.0, 0.95)
    think, population = 0.5, 50

    # horizon -> (measured seconds/rep, measured events/rep): extrapolated
    # rungs scale both linearly, so their reported rate stays consistent
    # with the measured rung at the same horizon.
    scalar_per_rep: dict[float, tuple[float, float]] = {}
    rows = []
    for key in point_keys:
        replications, horizon, measure_scalar = SIM_LOOP_POINTS[key]
        warmup = horizon * 0.05
        seeds = [1000 + index for index in range(replications)]

        if measure_scalar:
            started = time.perf_counter()
            scalar_events = 0
            for seed in seeds:
                result = simulate_closed_map_network(
                    front, db, think, population, horizon=horizon, warmup=warmup,
                    rng=np.random.default_rng(seed),
                )
                scalar_events += result.events
            scalar_seconds = time.perf_counter() - started
            scalar_per_rep[horizon] = (
                scalar_seconds / replications,
                scalar_events / replications,
            )
            scalar_extrapolated = False
        else:
            if horizon not in scalar_per_rep:
                probe = time.perf_counter()
                result = simulate_closed_map_network(
                    front, db, think, population, horizon=horizon, warmup=warmup,
                    rng=np.random.default_rng(seeds[0]),
                )
                scalar_per_rep[horizon] = (
                    time.perf_counter() - probe, float(result.events)
                )
            seconds_per_rep, events_per_rep = scalar_per_rep[horizon]
            scalar_seconds = seconds_per_rep * replications
            scalar_events = events_per_rep * replications
            scalar_extrapolated = True

        started = time.perf_counter()
        batched = simulate_closed_map_network_batch(
            front, db, think, population, horizon=horizon, warmup=warmup, seeds=seeds,
        )
        batched_seconds = time.perf_counter() - started
        batched_events = sum(result.events for result in batched)

        rows.append({
            "key": key,
            "replications": replications,
            "horizon": horizon,
            "scalar_seconds": scalar_seconds,
            "scalar_cell_seconds": scalar_seconds / replications,
            "scalar_extrapolated": scalar_extrapolated,
            "scalar_events_per_second": scalar_events / scalar_seconds,
            "batched_seconds": batched_seconds,
            "batched_cell_seconds": batched_seconds / replications,
            "batched_events_per_second": batched_events / batched_seconds,
            "speedup": scalar_seconds / batched_seconds,
        })
    return rows


def run_benchmarks(quick: bool) -> dict:
    import numpy
    import scipy

    solve_populations = QUICK_SOLVE_POPULATIONS if quick else FULL_SOLVE_POPULATIONS
    sweep_populations = [25, 50, 75, 100] if quick else [100, 200, 300, 400, 500]
    sim_horizon = 2000.0 if quick else 20000.0
    sim_loop_points = QUICK_SIM_LOOP if quick else FULL_SIM_LOOP
    build_repeats = 3 if quick else 5
    return {
        "benchmark": "closed MAP network solver + simulator",
        "generated_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "results": {
            "generator_build": bench_generator_build(100, build_repeats),
            "exact_solve": bench_exact_solve(solve_populations),
            "sweep": bench_sweep(sweep_populations),
            "simulation": bench_simulation(sim_horizon),
            "sim_loop": bench_sim_loop(sim_loop_points),
        },
    }


# ----------------------------------------------------------------------
# Trajectory (append-only history) and the regression gate
# ----------------------------------------------------------------------
def git_sha() -> str:
    """Short SHA of HEAD, or ``"unknown"`` outside a work tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        )
        return completed.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def entry_environment(document_environment: dict) -> dict:
    """The slice of the environment that makes timings comparable."""
    python = str(document_environment.get("python", ""))
    return {
        "python": ".".join(python.split(".")[:2]),
        "machine": document_environment.get("machine", ""),
    }


def history_entry(document: dict, sha: str) -> dict:
    """Compact trajectory entry for one benchmark run."""
    results = document["results"]
    build = results["generator_build"]
    return {
        "sha": sha,
        "date_utc": document["generated_utc"],
        "quick": document["quick"],
        "environment": entry_environment(document.get("environment", {})),
        "generator_build": {
            "naive_seconds": build["naive_seconds"],
            "kron_seconds": build["kron_seconds"],
            "speedup": build["speedup"],
        },
        "exact_solve": {
            str(row["population"]): row["seconds"] for row in results["exact_solve"]
        },
        "exact_solve_iterations": {
            str(row["population"]): row["krylov_iterations"]
            for row in results["exact_solve"]
            if row.get("krylov_iterations") is not None
        },
        "sweep_seconds": results["sweep"]["seconds"],
        "simulation_rate": results["simulation"]["completions_per_second"],
        "sim_loop": {
            row["key"]: {
                "scalar_seconds": row["scalar_seconds"],
                "batched_seconds": row["batched_seconds"],
                "speedup": row["speedup"],
            }
            for row in results.get("sim_loop", [])
        },
    }


def load_trajectory(path: str) -> list[dict]:
    """History entries of an existing document (either format), oldest first.

    The pre-trajectory format (one flat result document) is absorbed as a
    single synthetic entry so the committed numbers keep anchoring the trend.
    """
    if not os.path.exists(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(document, dict):
        return []
    if "history" in document:
        history = document["history"]
        return list(history) if isinstance(history, list) else []
    if "results" in document:  # pre-trajectory single-run format
        return [history_entry(document, sha="pre-trajectory")]
    return []


def gate_baseline(entry: dict, history: list[dict]) -> dict | None:
    """The newest history entry whose environment makes timings comparable.

    Wall-clock gates are only meaningful within one machine class: a
    trajectory committed from a developer box must not fail (or pass) the
    gate on a CI runner with a different interpreter or architecture, so
    only entries matching ``entry``'s python major.minor + machine qualify.
    Entries written before environments were recorded never qualify.
    """
    wanted = entry.get("environment")
    for candidate in reversed(history):
        if candidate.get("environment") == wanted:
            return candidate
    return None


def check_regressions(
    entry: dict, baseline: dict, threshold: float = GATE_THRESHOLD
) -> list[str]:
    """Regression messages for ``entry`` vs ``baseline`` (empty = gate passes).

    Gated metrics: ``generator_build`` Kronecker assembly time, every
    ``exact_solve`` population present in *both* entries (quick and full
    grids overlap at N=100, so CI quick runs gate against committed full
    runs too), the Krylov iteration count of every such population that
    recorded one in both entries (iteration counts are deterministic, so
    this catches preconditioner-quality regressions that wall-clock noise
    would hide — the quick grid's N=100 runs the ILU'd BiCGSTAB), and both
    kernels' seconds of every ``sim_loop`` rung present in both entries
    (the grids overlap at R64).
    """
    messages = []

    def compare(label: str, current: float, previous: float) -> None:
        if previous > 0 and current > previous * (1.0 + threshold):
            messages.append(
                f"{label}: {current:.4f}s vs {previous:.4f}s "
                f"(+{(current / previous - 1.0) * 100.0:.0f}%, gate {threshold * 100:.0f}%)"
            )

    def compare_iterations(label: str, current: int, previous: int) -> None:
        # Integer counts at small values need absolute slack: 10 -> 12 is
        # within solver jitter across scipy versions, 10 -> 14 is not.
        allowed = previous + max(2, round(previous * threshold))
        if current > allowed:
            messages.append(
                f"{label}: {current} iterations vs {previous} "
                f"(gate {threshold * 100:.0f}% + 2)"
            )

    compare(
        "generator_build.kron_seconds",
        entry["generator_build"]["kron_seconds"],
        baseline.get("generator_build", {}).get("kron_seconds", 0.0),
    )
    baseline_solves = baseline.get("exact_solve", {})
    for population, seconds in entry["exact_solve"].items():
        if population in baseline_solves:
            compare(
                f"exact_solve[N={population}]", seconds, baseline_solves[population]
            )
    baseline_iterations = baseline.get("exact_solve_iterations", {})
    for population, iterations in entry.get("exact_solve_iterations", {}).items():
        if population in baseline_iterations:
            compare_iterations(
                f"exact_solve_iterations[N={population}]",
                iterations,
                baseline_iterations[population],
            )
    baseline_sim_loop = baseline.get("sim_loop", {})
    for key, point in entry.get("sim_loop", {}).items():
        if key in baseline_sim_loop:
            for kernel in ("scalar_seconds", "batched_seconds"):
                compare(
                    f"sim_loop[{key}].{kernel}",
                    point[kernel],
                    baseline_sim_loop[key].get(kernel, 0.0),
                )
    return messages


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_solver.json", help="output document path"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small grid for the CI bench-smoke step (enables the regression gate)",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="record the trajectory entry without gating (e.g. on a known-slow box)",
    )
    parser.add_argument(
        "--gate-threshold", type=float, default=GATE_THRESHOLD,
        help="relative slowdown that fails the quick gate (default 0.25)",
    )
    args = parser.parse_args(argv)

    history = load_trajectory(args.output)
    document = run_benchmarks(quick=args.quick)
    entry = history_entry(document, sha=git_sha())

    regressions: list[str] = []
    baseline = None
    if args.quick and not args.no_gate and history:
        baseline = gate_baseline(entry, history)
        if baseline is None:
            print(
                "note: no trajectory entry from a comparable environment "
                f"({entry['environment']}); regression gate skipped"
            )
        else:
            regressions = check_regressions(entry, baseline, args.gate_threshold)

    # A gate-failing run is reported but NOT appended: otherwise one rerun
    # would compare the regression against itself and wave it through.
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": document["benchmark"],
                "latest": document,
                "history": history if regressions else history + [entry],
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")

    build = document["results"]["generator_build"]
    print(
        f"generator build N={build['population']}: "
        f"naive {build['naive_seconds']:.3f}s vs kron {build['kron_seconds']:.4f}s "
        f"({build['speedup']:.1f}x)"
    )
    for row in document["results"]["exact_solve"]:
        iterations = row.get("krylov_iterations")
        iteration_note = f", {iterations} Krylov iters" if iterations is not None else ""
        print(
            f"exact solve N={row['population']}: {row['seconds']:.2f}s "
            f"({row['num_states']} states, {row['solver_tier']}{iteration_note}, "
            f"peak {row['peak_rss_mb']:.0f} MB vs ~{row['materialized_estimate_mb']:.0f} MB materialized)"
        )
    sweep = document["results"]["sweep"]
    print(f"sweep {sweep['populations']}: {sweep['seconds']:.2f}s")
    sim = document["results"]["simulation"]
    print(f"simulation: {sim['completions_per_second']:,.0f} completions/s")
    for row in document["results"]["sim_loop"]:
        scalar_note = " (extrapolated)" if row["scalar_extrapolated"] else ""
        print(
            f"sim_loop R={row['replications']} horizon={row['horizon']:g}: "
            f"scalar {row['scalar_seconds']:.2f}s{scalar_note} vs "
            f"batched {row['batched_seconds']:.2f}s -> {row['speedup']:.1f}x "
            f"({row['batched_events_per_second']:,.0f} ev/s batched)"
        )
    entries = len(history) if regressions else len(history) + 1
    print(f"wrote {args.output} ({entries} trajectory entries)")

    if regressions:
        print(
            f"\nPERF REGRESSION GATE FAILED against trajectory entry "
            f"{baseline['sha']} ({baseline['date_utc']}); "
            "the regressed run was NOT appended:"
        )
        for message in regressions:
            print(f"  {message}")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
