"""Ablation: busy-period (Figure 2) estimator versus full-information estimators.

The paper's estimator only sees per-window utilisations and completion
counts.  This ablation quantifies how much is lost relative to estimators
that see every individual service time (the autocorrelation-sum form of
eq. (1) and the counting form of eq. (2)), on service processes with known
analytic indices of dispersion.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import format_table
from repro.core.dispersion import estimate_index_of_dispersion
from repro.maps import map2_from_moments_and_decay
from repro.maps.sampling import sample_interarrival_times
from repro.traces.stats import index_of_dispersion_acf, index_of_dispersion_counts


def window_series(service_times, period):
    event_times = np.cumsum(service_times)
    num_windows = int(event_times[-1] // period)
    edges = np.arange(1, num_windows + 1) * period
    cumulative = np.searchsorted(event_times, edges, side="right")
    completions = np.diff(np.concatenate([[0], cumulative]))
    return np.ones(num_windows), completions


def run_ablation():
    rng = np.random.default_rng(31)
    cases = {
        "poisson (I=1)": (None, rng.exponential(0.01, 80_000), 1.0),
    }
    for decay, label in ((0.9, "mild (decay 0.9)"), (0.99, "strong (decay 0.99)")):
        process = map2_from_moments_and_decay(0.01, 4.0, decay)
        trace = sample_interarrival_times(process, 80_000, rng=rng)
        cases[label] = (process, trace, process.index_of_dispersion())
    results = []
    for label, (process, trace, true_value) in cases.items():
        utilizations, completions = window_series(trace, 0.5)
        figure2 = estimate_index_of_dispersion(utilizations, completions, 0.5).index_of_dispersion
        acf_based = index_of_dispersion_acf(trace, max_lag=500)
        counts_based = index_of_dispersion_counts(trace)
        results.append((label, true_value, figure2, acf_based, counts_based))
    return results


def test_ablation_dispersion_estimators(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        (
            label,
            f"{true_value:.1f}",
            f"{figure2:.1f}",
            f"{acf_based:.1f}",
            f"{counts_based:.1f}",
        )
        for label, true_value, figure2, acf_based, counts_based in results
    ]
    print()
    print("Ablation — index of dispersion estimators (true vs estimated)")
    print(
        format_table(
            ["service process", "analytic I", "Figure-2 (coarse)", "eq.(1) acf", "eq.(2) counts"],
            rows,
        )
    )
    by_label = {row[0]: row[1:] for row in results}
    # Every estimator identifies the Poisson case as non-bursty...
    assert by_label["poisson (I=1)"][1] < 3.0
    # ...and ranks the bursty cases correctly even from coarse data.
    assert by_label["strong (decay 0.99)"][1] > by_label["mild (decay 0.9)"][1] > by_label["poisson (I=1)"][1]
    # The coarse estimator stays within a factor ~3 of the analytic value.
    for label in ("mild (decay 0.9)", "strong (decay 0.99)"):
        true_value, figure2 = by_label[label][0], by_label[label][1]
        assert true_value / 3.5 < figure2 < true_value * 3.5
