"""Tables 2, 3 and 4: testbed configuration, transaction catalogue, think times.

These tables are configuration summaries rather than measurements; the
benchmark regenerates them from the simulator's own configuration objects so
that any drift between the documentation and the code is caught.
"""

from __future__ import annotations

from benchmarks.conftest import format_table
from repro.tpcw import STANDARD_MIXES, TRANSACTION_CATALOG, TestbedConfig, BROWSING_MIX
from repro.tpcw.transactions import TransactionClass, browsing_transactions, ordering_transactions


def build_tables():
    table2 = [
        ("Clients (Emulated Browsers)", "closed-loop generator, exponential think time"),
        ("Front Server", "processor-sharing CPU (Apache/Tomcat analogue)"),
        ("Database Server", "processor-sharing CPU with contention episodes (MySQL analogue)"),
        ("Monitoring", "1 s utilisation windows (`sar`), 5 s completion windows (Diagnostics)"),
    ]
    table3 = [
        (name, TRANSACTION_CATALOG[name].transaction_class.value)
        for name in TRANSACTION_CATALOG
    ]
    table4 = [
        ("Model-Z0.5", "Z_qn = 0.5 s", "Z_estim = 0.5 s"),
        ("Model-Z7", "Z_qn = 0.5 s", "Z_estim = 7 s"),
    ]
    return table2, table3, table4


def test_tables_2_3_4_configuration(benchmark):
    table2, table3, table4 = benchmark.pedantic(build_tables, rounds=1, iterations=1)
    print()
    print("Table 2 — simulated testbed components")
    print(format_table(["component", "simulated as"], table2))
    print()
    print("Table 3 — the 14 TPC-W transactions and their classes")
    print(format_table(["transaction", "class"], table3))
    print()
    print("Table 4 — think-time configurations used for model estimation")
    print(format_table(["model", "queueing network", "MAP(2) estimation"], table4))

    # Table 3 shape: 14 transactions, 6 browsing and 8 ordering.
    assert len(table3) == 14
    assert len(browsing_transactions()) == 6
    assert len(ordering_transactions()) == 8
    # The three standard mixes exist with the documented class fractions.
    assert set(STANDARD_MIXES) == {"browsing", "shopping", "ordering"}
    fractions = {name: mix.browsing_fraction() for name, mix in STANDARD_MIXES.items()}
    assert abs(fractions["browsing"] - 0.95) < 0.01
    assert abs(fractions["shopping"] - 0.80) < 0.01
    assert abs(fractions["ordering"] - 0.50) < 0.01
    # Default experiment configuration mirrors Table 2/4 defaults.
    config = TestbedConfig(mix=BROWSING_MIX, num_ebs=100)
    assert config.think_time == 0.5
    assert config.utilization_window == 1.0
    assert config.completion_window == 5.0
    assert TRANSACTION_CATALOG["Home"].transaction_class is TransactionClass.BROWSING
