"""Figure 4: throughput and per-server utilisation versus the number of EBs.

The paper's observations to reproduce:

* throughput flattens earliest for the browsing mix and latest for the
  ordering mix, with plateau heights ordered browsing < shopping < ordering;
* under the shopping and ordering mixes the front server approaches 100 %
  utilisation while the database stays far below (front-server bottleneck);
* under the browsing mix the front server grows slowly beyond saturation and
  the two average utilisations end up close to each other (the ambiguity that
  motivates the bottleneck-switch analysis).
"""

from __future__ import annotations

from benchmarks.conftest import EB_VALUES, format_table


def test_fig4_throughput_and_utilization(benchmark, eb_sweeps):
    sweeps = benchmark.pedantic(lambda: eb_sweeps, rounds=1, iterations=1)
    print()
    for mix_name in ("browsing", "shopping", "ordering"):
        rows = [
            (
                point.num_ebs,
                f"{point.throughput:.1f}",
                f"{100 * point.front_utilization:.1f}%",
                f"{100 * point.db_utilization:.1f}%",
            )
            for point in sweeps[mix_name]
        ]
        print(f"Figure 4 — {mix_name} mix")
        print(format_table(["EBs", "TPUT (tx/s)", "front CPU", "DB CPU"], rows))
        print()

    plateau = {name: sweeps[name][-1].throughput for name in sweeps}
    # Plateau ordering: browsing < shopping < ordering.
    assert plateau["browsing"] < plateau["shopping"] < plateau["ordering"]

    # Front-server bottleneck for shopping and ordering at high load.
    for name in ("shopping", "ordering"):
        final = sweeps[name][-1]
        assert final.front_utilization > 0.9
        assert final.db_utilization < 0.7 * final.front_utilization

    # Browsing: average utilisations end up comparable (within 15 points) and
    # the front server never reaches full saturation.
    browsing_final = sweeps["browsing"][-1]
    assert abs(browsing_final.front_utilization - browsing_final.db_utilization) < 0.15
    assert browsing_final.front_utilization < 0.95

    # Browsing saturates earliest: its relative throughput gain from 100 to
    # 150 EBs is the smallest among the mixes at that point.
    def relative_gain(points):
        x100 = next(p.throughput for p in points if p.num_ebs == 100)
        x150 = next(p.throughput for p in points if p.num_ebs == 150)
        return (x150 - x100) / x100

    assert relative_gain(sweeps["browsing"]) < relative_gain(sweeps["ordering"])

    # Low load: all mixes deliver roughly N / Z transactions per second.
    for name in sweeps:
        x25 = next(p.throughput for p in sweeps[name] if p.num_ebs == 25)
        assert abs(x25 - 25 / 0.5) / (25 / 0.5) < 0.1

    benchmark.extra_info["plateau_throughput"] = plateau
    assert set(EB_VALUES) == {p.num_ebs for p in sweeps["browsing"]}
