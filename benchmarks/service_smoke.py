"""End-to-end chaos smoke of the live what-if service (CI: ``service-smoke``).

Drives the real CLI (``python -m repro.experiments service ...``) as real
subprocesses through a scripted failure arc and asserts the self-healing
contract at every step:

* **A — clean start**: the daemon ingests streamed synthetic traces, fits,
  solves and promotes; health ``healthy``, forecast ``fresh`` (exit 0).
* **B1 — solver crashes**: ``solve-crash`` injection OOM-kills the solve
  worker; the service keeps serving the promoted forecast, health
  ``degraded`` (exit 3), forecast explicitly ``stale`` (exit 3).
* **B2 — fit divergence**: ``fit-diverge`` injection makes refits raise
  MapFitError until the fit breaker opens; still ``degraded``, still
  serving the last-known-good forecast — the service never stops answering.
* **C — recovery**: with the injection budget exhausted the breakers
  half-open, probe, re-close; health returns to ``healthy`` and the
  forecast to ``fresh``.
* **D — SIGTERM drain**: a run is SIGTERMed mid-flight; it finishes the
  cycle, checkpoints and exits.  A resumed run completing the same total
  cycle count produces a checkpoint and forecast **byte-identical** to an
  uninterrupted run — crash recovery loses nothing and changes nothing.

Run from the repository root::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import synthesize_service_trace  # noqa: E402


def _run_cli(args, env_extra=None, expect=None):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parent.parent / "src"))
    env.pop("REPRO_FAULT_INJECT", None)
    if env_extra:
        env.update(env_extra)
    process = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "service", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    label = " ".join(args[:1] + [a for a in args[1:] if not a.startswith("/")])
    print(f"$ service {label} -> exit {process.returncode}")
    for line in process.stdout.strip().splitlines():
        print(f"  {line}")
    if process.stderr.strip():
        print(f"  stderr: {process.stderr.strip()}")
    if expect is not None and process.returncode != expect:
        raise SystemExit(
            f"FAIL: `service {label}` exited {process.returncode}, expected {expect}"
        )
    return process


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    print(f"workspace: {root}")
    for name, seed in (("front", 11), ("db", 12)):
        synthesize_service_trace(
            root / f"{name}.trace",
            events=60000,
            mean_service=0.02,
            scv=4.0,
            utilization=0.5,
            seed=seed,
        )
    config_path = root / "service.json"
    config_path.write_text(
        json.dumps(
            {
                "name": "smoke",
                "traces": {"front": "front.trace", "db": "db.trace"},
                "think_time": 1.0,
                "populations": [1, 2, 4, 8],
                "chunk_events": 2000,
                "max_chunks_per_cycle": 2,
                "refit_windows": 80,
                "fit_horizon_windows": 400,
                "min_fit_windows": 120,
                "estimator": {"min_windows": 40},
                "stage_timeout_seconds": 60.0,
                "stage_retries": 1,
                "breaker_threshold": 2,
                "breaker_backoff_cycles": 2,
                "breaker_backoff_cap_cycles": 8,
                "queue_maxlen": 4,
                "stall_cycles": 30,
            }
        )
    )
    state = str(root / "state")
    config = str(config_path)

    print("\n=== phase A: clean start promotes and serves fresh ===")
    _run_cli(["run", config, "--cycles", "4", "--state-dir", state], expect=0)
    _run_cli(["status", config, "--state-dir", state], expect=0)
    _run_cli(["forecast", config, "--state-dir", state], expect=0)

    print("\n=== phase B1: solve workers crash; last-known-good keeps serving ===")
    _run_cli(
        ["run", config, "--cycles", "2", "--state-dir", state],
        env_extra={"REPRO_FAULT_INJECT": "solve-crash:service/solve:6"},
        expect=3,
    )
    _run_cli(["status", config, "--state-dir", state], expect=3)
    forecast = _run_cli(
        ["forecast", config, "--state-dir", state, "--json"], expect=3
    )
    payload = json.loads(forecast.stdout)
    if payload["stale"] is not True or not payload["rows"]:
        raise SystemExit("FAIL: degraded service must serve a stale forecast")

    print("\n=== phase B2: refits diverge until the fit breaker opens ===")
    _run_cli(
        ["run", config, "--cycles", "3", "--state-dir", state],
        env_extra={"REPRO_FAULT_INJECT": "fit-diverge:service/fit:9"},
        expect=3,
    )
    status = _run_cli(["status", config, "--state-dir", state, "--json"], expect=3)
    health = json.loads(status.stdout)
    if health["serving"] != "last-known-good":
        raise SystemExit("FAIL: expected the last-known-good forecast to be served")
    if health["stages"]["fit"]["breaker_opens"] < 1:
        raise SystemExit("FAIL: expected the fit breaker to have opened")

    print("\n=== phase C: injection budget exhausted; breakers re-close ===")
    _run_cli(["run", config, "--cycles", "6", "--state-dir", state], expect=0)
    _run_cli(["status", config, "--state-dir", state], expect=0)
    _run_cli(["forecast", config, "--state-dir", state], expect=0)

    print("\n=== phase D: SIGTERM drain resumes bit-identically ===")
    drained_state = root / "drained"
    straight_state = root / "straight"
    _run_cli(["run", config, "--cycles", "3", "--state-dir", str(drained_state)])
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parent.parent / "src"))
    env.pop("REPRO_FAULT_INJECT", None)
    background = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "service",
            "run",
            config,
            "--state-dir",
            str(drained_state),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    time.sleep(3.0)
    background.send_signal(signal.SIGTERM)
    try:
        background.wait(timeout=120)
    except subprocess.TimeoutExpired:
        background.kill()
        raise SystemExit("FAIL: SIGTERM did not drain the running service")
    print(f"  drained run exited {background.returncode} after SIGTERM")
    if background.returncode not in (0, 3, 4):
        raise SystemExit("FAIL: drained run must exit with a health status code")
    drained_cycle = json.loads(
        (drained_state / "checkpoint.json").read_text()
    )["cycle"]
    print(f"  drained at cycle {drained_cycle}")
    target = drained_cycle + 3
    _run_cli(
        ["run", config, "--cycles", "3", "--state-dir", str(drained_state)]
    )
    _run_cli(
        ["run", config, "--cycles", str(target), "--state-dir", str(straight_state)]
    )
    drained_ckpt = (drained_state / "checkpoint.json").read_bytes()
    straight_ckpt = (straight_state / "checkpoint.json").read_bytes()
    if drained_ckpt != straight_ckpt:
        raise SystemExit(
            "FAIL: checkpoint after SIGTERM+resume differs from the "
            "uninterrupted run"
        )
    drained_forecast = max(drained_state.glob("forecast-*.json")).read_bytes()
    straight_forecast = max(straight_state.glob("forecast-*.json")).read_bytes()
    if drained_forecast != straight_forecast:
        raise SystemExit(
            "FAIL: forecast after SIGTERM+resume differs from the "
            "uninterrupted run"
        )
    print("  checkpoint and forecast bit-identical across drain + resume")

    print("\nservice smoke: all phases passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
