"""Ablation: switch the database contention off.

DESIGN.md attributes the browsing-mix modelling difficulty to the contention
process at the database.  With contention disabled, the same browsing mix
becomes a well-behaved front-bottleneck system: throughput rises, the
database queue bursts disappear, and plain MVA becomes accurate again —
confirming that the burstiness mechanism (and not some other artefact of the
simulator) is what breaks the mean-value model.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import MODEL_THINK_TIME, format_table
from repro.queueing import mva_closed_network
from repro.tpcw import BROWSING_MIX, ContentionConfig, TestbedConfig, TPCWTestbed
from repro.tpcw.experiment import measurement_from_series

POPULATION = 125


def run_pair():
    results = {}
    for label, enabled in (("contention ON", True), ("contention OFF", False)):
        config = TestbedConfig(
            mix=BROWSING_MIX,
            num_ebs=POPULATION,
            think_time=MODEL_THINK_TIME,
            duration=600.0,
            warmup=60.0,
            seed=7,
            contention=ContentionConfig(enabled=enabled),
        )
        run = TPCWTestbed(config).run()
        front_demand = measurement_from_series(run.front).mean_service_time
        db_demand = measurement_from_series(run.database).mean_service_time
        mva = mva_closed_network([front_demand, db_demand], MODEL_THINK_TIME, POPULATION)
        predicted = mva.throughput_at(POPULATION)
        results[label] = {
            "throughput": run.throughput,
            "mva": predicted,
            "mva_error": abs(predicted - run.throughput) / run.throughput,
            "db_queue_peak": float(run.database.queue_length.max()),
            "switch_fraction": float(
                np.mean(run.database.utilization > run.front.utilization + 0.15)
            ),
        }
    return results


def test_ablation_contention_off(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        (
            label,
            f"{values['throughput']:.1f}",
            f"{values['mva']:.1f}",
            f"{100 * values['mva_error']:.1f}%",
            f"{values['db_queue_peak']:.0f}",
            f"{100 * values['switch_fraction']:.1f}%",
        )
        for label, values in results.items()
    ]
    print()
    print(f"Ablation — browsing mix at {POPULATION} EBs with and without DB contention")
    print(
        format_table(
            ["configuration", "measured TPUT", "MVA TPUT", "MVA error", "DB queue peak", "time DB >> front"],
            rows,
        )
    )
    on, off = results["contention ON"], results["contention OFF"]
    # Contention costs throughput and creates the queue bursts / switch.
    assert off["throughput"] > on["throughput"]
    assert on["db_queue_peak"] > 3 * off["db_queue_peak"]
    assert on["switch_fraction"] > 0.1 > off["switch_fraction"]
    # MVA is accurate without contention and inaccurate with it.
    assert off["mva_error"] < 0.08
    assert on["mva_error"] > 0.15
